package compiler

import (
	"errors"
	"fmt"
	"sort"

	"plasticine/internal/arch"
	"plasticine/internal/dhdl"
	"plasticine/internal/fault"
)

// ErrInsufficient is wrapped by every "design does not fit" placement
// failure, including fits that fail only because a fault plan disabled
// tiles. Callers distinguish capacity problems from programming errors with
// errors.Is(err, ErrInsufficient).
var ErrInsufficient = errors.New("compiler: insufficient healthy resources")

// InsufficientError reports exactly which resource ran out during
// placement, and how much of the shortfall is due to faulted tiles.
type InsufficientError struct {
	Resource string // "PCU", "PMU", or "AG"
	Need     int    // units the design requires
	Have     int    // healthy units available
	Disabled int    // units removed by the fault plan
}

func (e *InsufficientError) Error() string {
	if e.Disabled > 0 {
		return fmt.Sprintf("%v: design needs %d %ss, %d healthy on chip (%d disabled by fault plan)",
			ErrInsufficient, e.Need, e.Resource, e.Have, e.Disabled)
	}
	return fmt.Sprintf("%v: design needs %d %ss, chip has %d", ErrInsufficient, e.Need, e.Resource, e.Have)
}

func (e *InsufficientError) Unwrap() error { return ErrInsufficient }

// NodeKind is the physical resource type a netlist node occupies.
type NodeKind int

const (
	// NodePCU occupies a Pattern Compute Unit slot.
	NodePCU NodeKind = iota
	// NodePMU occupies a Pattern Memory Unit slot.
	NodePMU
	// NodeAG occupies an address generator at the chip edge.
	NodeAG
)

// Node is one physical unit instance awaiting placement.
type Node struct {
	Kind NodeKind
	Name string
	// Origin is the source-level provenance inherited from the virtual unit
	// this instance was expanded from (never empty after BuildNetlist).
	Origin string
	Edges  []int // indices of connected nodes

	X, Y int // assigned position (AGs: X is -1 or Cols)
}

// Netlist is the physical-unit graph of a partitioned program.
type Netlist struct {
	Nodes []*Node

	// LeafChain maps each leaf controller to its chain of PCU node
	// indices (first unrolled copy).
	LeafChain map[*dhdl.Controller][]int
	// MemNode maps each SRAM to its primary PMU node index.
	MemNode map[*dhdl.SRAM]int
	// AGNode maps each transfer leaf to its AG node index.
	AGNode map[*dhdl.Controller]int
}

// BuildNetlist expands a partitioned program into unit instances with
// connectivity edges.
func BuildNetlist(part *Partitioned) *Netlist {
	nl := &Netlist{
		LeafChain: map[*dhdl.Controller][]int{},
		MemNode:   map[*dhdl.SRAM]int{},
		AGNode:    map[*dhdl.Controller]int{},
	}
	addNode := func(k NodeKind, name, origin string) int {
		if origin == "" {
			origin = name
		}
		nl.Nodes = append(nl.Nodes, &Node{Kind: k, Name: name, Origin: origin})
		return len(nl.Nodes) - 1
	}
	connect := func(a, b int) {
		nl.Nodes[a].Edges = append(nl.Nodes[a].Edges, b)
		nl.Nodes[b].Edges = append(nl.Nodes[b].Edges, a)
	}

	// PMUs first so compute units can connect to them.
	for _, pm := range part.PMUs {
		for u := 0; u < pm.V.Unroll; u++ {
			var prev int = -1
			for c := 0; c < pm.Copies; c++ {
				id := addNode(NodePMU, fmt.Sprintf("%s.pmu%d.%d", pm.V.Name, u, c), pm.V.Origin)
				if u == 0 && c == 0 {
					nl.MemNode[pm.V.Mem] = id
				}
				if prev >= 0 {
					connect(prev, id)
				}
				prev = id
			}
			for s := 0; s < pm.SupportPCUs; s++ {
				id := addNode(NodePCU, fmt.Sprintf("%s.addr%d.%d", pm.V.Name, u, s), pm.V.Origin)
				if first, ok := nl.MemNode[pm.V.Mem]; ok {
					connect(first, id)
				}
			}
		}
	}
	for _, pc := range part.PCUs {
		for u := 0; u < pc.V.Unroll; u++ {
			var chain []int
			prev := -1
			for k := range pc.Parts {
				id := addNode(NodePCU, fmt.Sprintf("%s.pcu%d.%d", pc.V.Name, u, k), pc.V.Origin)
				chain = append(chain, id)
				if prev >= 0 {
					connect(prev, id)
				}
				prev = id
			}
			if u == 0 {
				nl.LeafChain[pc.V.Leaf] = chain
			}
			// Connect first/last partition to the memories it touches.
			if len(chain) > 0 {
				for _, vi := range pc.V.VecIns {
					if vi.SRAM != nil {
						if mn, ok := nl.MemNode[vi.SRAM]; ok {
							connect(chain[0], mn)
						}
					}
				}
				for _, o := range pc.V.Outs {
					if o.SRAM != nil {
						if mn, ok := nl.MemNode[o.SRAM]; ok {
							connect(chain[len(chain)-1], mn)
						}
					}
				}
			}
		}
	}
	for _, ag := range part.Virtual.AGs {
		for u := 0; u < ag.Unroll; u++ {
			id := addNode(NodeAG, fmt.Sprintf("%s.ag%d", ag.Name, u), ag.Origin)
			if u == 0 {
				nl.AGNode[ag.Leaf] = id
			}
			x := ag.Leaf.Xfer
			for _, s := range []*dhdl.SRAM{x.SRAM, x.AddrMem, x.DataMem} {
				if s != nil {
					if mn, ok := nl.MemNode[s]; ok {
						connect(id, mn)
					}
				}
			}
		}
	}
	return nl
}

// Place assigns netlist nodes to grid slots: PCUs and PMUs interleave in a
// checkerboard (Figure 5); AGs sit on the left/right chip edges. Placement
// is greedy: nodes in netlist order take the free slot of their type that
// minimises Manhattan distance to already-placed neighbours.
func Place(nl *Netlist, p arch.Params) error {
	return PlaceWithFaults(nl, p, nil)
}

// PlaceWithFaults is Place under a fault plan: tiles the plan disables are
// never offered as slots, so the greedy placement re-allocates around them
// exactly as it fills a smaller chip. A nil plan reproduces Place
// byte-identically (same slot ordering, same assignments). Failures wrap
// ErrInsufficient with a per-resource shortfall breakdown.
func PlaceWithFaults(nl *Netlist, p arch.Params, plan *fault.Plan) error {
	cols, rows := p.Chip.Cols, p.Chip.Rows
	type slot struct{ x, y int }
	var pcuSlots, pmuSlots []slot
	// Order slots centre-out so early nodes get central positions.
	cx, cy := cols/2, rows/2
	var all []slot
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			all = append(all, slot{x, y})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		di := absInt(all[i].x-cx) + absInt(all[i].y-cy)
		dj := absInt(all[j].x-cx) + absInt(all[j].y-cy)
		if di != dj {
			return di < dj
		}
		if all[i].y != all[j].y {
			return all[i].y < all[j].y
		}
		return all[i].x < all[j].x
	})
	for _, s := range all {
		if (s.x+s.y)%2 == 0 {
			if !plan.PCUDisabled(s.x, s.y) {
				pcuSlots = append(pcuSlots, s)
			}
		} else if !plan.PMUDisabled(s.x, s.y) {
			pmuSlots = append(pmuSlots, s)
		}
	}
	// Fail fast with the full shortfall rather than opaquely mid-placement.
	var needPCU, needPMU, needAG int
	for _, nd := range nl.Nodes {
		switch nd.Kind {
		case NodePCU:
			needPCU++
		case NodePMU:
			needPMU++
		case NodeAG:
			needAG++
		}
	}
	if needPCU > len(pcuSlots) {
		return &InsufficientError{Resource: "PCU", Need: needPCU, Have: len(pcuSlots),
			Disabled: plan.NumDisabledPCUs()}
	}
	if needPMU > len(pmuSlots) {
		return &InsufficientError{Resource: "PMU", Need: needPMU, Have: len(pmuSlots),
			Disabled: plan.NumDisabledPMUs()}
	}
	if needAG > p.NumAGs() {
		return &InsufficientError{Resource: "AG", Need: needAG, Have: p.NumAGs()}
	}
	agLeft, agRight := p.Chip.AGsPerSide, p.Chip.AGsPerSide
	usedPCU := make([]bool, len(pcuSlots))
	usedPMU := make([]bool, len(pmuSlots))
	placed := make([]bool, len(nl.Nodes))
	agY := 0

	for idx, nd := range nl.Nodes {
		switch nd.Kind {
		case NodeAG:
			if agLeft > 0 {
				nd.X, nd.Y = -1, agY%rows
				agLeft--
			} else if agRight > 0 {
				nd.X, nd.Y = cols, agY%rows
				agRight--
			} else {
				return &InsufficientError{Resource: "AG", Need: needAG, Have: p.NumAGs()}
			}
			agY++
		case NodePCU, NodePMU:
			slots, used := pcuSlots, usedPCU
			if nd.Kind == NodePMU {
				slots, used = pmuSlots, usedPMU
			}
			best, bestCost := -1, 1<<30
			for i, s := range slots {
				if used[i] {
					continue
				}
				cost, nPlaced := 0, 0
				for _, e := range nd.Edges {
					if placed[e] {
						o := nl.Nodes[e]
						cost += absInt(o.X-s.x) + absInt(o.Y-s.y)
						nPlaced++
					}
				}
				if nPlaced == 0 {
					cost = absInt(s.x-cx) + absInt(s.y-cy)
				}
				if cost < bestCost {
					best, bestCost = i, cost
				}
			}
			if best < 0 {
				res, need, have := "PCU", needPCU, len(pcuSlots)
				if nd.Kind == NodePMU {
					res, need, have = "PMU", needPMU, len(pmuSlots)
				}
				dis := plan.NumDisabledPCUs()
				if nd.Kind == NodePMU {
					dis = plan.NumDisabledPMUs()
				}
				return &InsufficientError{Resource: res, Need: need, Have: have, Disabled: dis}
			}
			nd.X, nd.Y = slots[best].x, slots[best].y
			used[best] = true
		}
		placed[idx] = true
	}
	return nil
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// RouteHops returns the routing latency in switch hops between two placed
// nodes (X-Y dimension-ordered routing with registered links, Section 3.3).
func RouteHops(a, b *Node) int {
	return absInt(a.X-b.X) + absInt(a.Y-b.Y)
}
