// Package compiler maps DHDL programs onto the Plasticine fabric
// (Section 3.6): it allocates virtual Pattern Compute and Memory Units from
// the controller tree, schedules dataflow bodies into SIMD pipeline stages,
// partitions virtual units into physical units under a given set of
// architecture parameters, places units on the chip grid and routes the
// static interconnect, and emits per-unit configurations (the "bitstream")
// plus a resource report.
package compiler

import (
	"fmt"

	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
)

// OperandKind says where a VOp argument comes from.
type OperandKind int

const (
	// OpResult is the result of an earlier op in the same virtual unit.
	OpResult OperandKind = iota
	// VecIn is a vector input bus (SRAM read data, FIFO data).
	VecIn
	// ScalIn is a scalar input bus (register reads, dynamic limits).
	ScalIn
	// CtrIdx is a counter value from the unit's own counter chain.
	CtrIdx
	// ConstOperand is a configuration constant.
	ConstOperand
)

// Operand is one argument of a virtual op.
type Operand struct {
	Kind  OperandKind
	ID    int // op ID, input index, or counter level
	Const pattern.Value
}

// VOpKind classifies a virtual op.
type VOpKind int

const (
	// ALUOp is a plain functional-unit operation.
	ALUOp VOpKind = iota
	// MuxOp selects between two values.
	MuxOp
	// CastOp converts between i32 and f32.
	CastOp
	// ReduceOp folds a vector across lanes through the reduction tree and
	// accumulates across firings; it occupies log2(lanes)+1 stages.
	ReduceOp
	// RMWOp is the read-modify-write op a ReduceSRAM performs inside the
	// destination PMU.
	RMWOp
)

// VOp is one virtual pipeline operation.
type VOp struct {
	ID   int
	Kind VOpKind
	ALU  pattern.Op // for ALUOp, ReduceOp, RMWOp
	ToF  bool       // for CastOp: true = i32->f32
	Args []Operand
}

// StreamStride is the lane-level address behaviour of one SRAM stream.
type StreamStride struct {
	Stride int64
	// Affine is false for per-lane data-dependent (gather/scatter)
	// accesses.
	Affine bool
}

// VecInput describes a vector input bus of a virtual PCU.
type VecInput struct {
	SRAM *dhdl.SRAM
	FIFO *dhdl.FIFOMem
}

// ScalInput describes a scalar input bus.
type ScalInput struct {
	Reg *dhdl.Reg
}

// OutputKind classifies a virtual PCU output.
type OutputKind int

const (
	// OutVecSRAM writes a vector to a PMU.
	OutVecSRAM OutputKind = iota
	// OutVecFIFO pushes a vector (with valid mask) to a FIFO.
	OutVecFIFO
	// OutScalReg drives a scalar register over the scalar network.
	OutScalReg
)

// VOut is one output of a virtual PCU.
type VOut struct {
	Kind OutputKind
	SRAM *dhdl.SRAM
	FIFO *dhdl.FIFOMem
	Reg  *dhdl.Reg
	Src  Operand // value leaving the unit
}

// VirtualPCU is the abstract compute unit for one inner controller, with
// unbounded stages, registers and IO (Section 3.6: "virtual units").
type VirtualPCU struct {
	Name string
	// Origin is the source-level provenance inherited from the leaf
	// controller (Controller.Provenance); never empty after Allocate.
	Origin string
	Leaf   *dhdl.Controller

	Ops     []*VOp // in dependency (schedule) order
	VecIns  []VecInput
	ScalIns []ScalInput
	Outs    []VOut
	// ReadAccess/WriteAccess record how each SRAM stream's address varies
	// across lanes, for banking-conflict analysis.
	ReadAccess  []StreamStride
	WriteAccess []StreamStride
	NumCtrs     int   // counters in the unit's chain
	Reduces     int   // number of ReduceOps (cross-lane trees)
	Lanes       int   // innermost counter parallelization
	Unroll      int   // duplication factor from outer-counter parallelization
	Firings     int64 // vectors processed per full program run (static estimate)
}

// VirtualPMU is the abstract memory unit for one SRAM.
type VirtualPMU struct {
	Name string
	// Origin is the provenance inherited from the SRAM (SRAM.Provenance).
	Origin string
	Mem    *dhdl.SRAM

	AddrOps int // address-datapath ops copied from producers/consumers
	RMWOps  int // read-modify-write ALU ops (ReduceSRAM)
	Readers int // total read streams across leaves
	Writers int // total write streams across leaves
	// MaxConcurrentReads is the largest number of distinct read streams a
	// single leaf opens; streams beyond the PMU's vector outputs require
	// content duplication (Section 3.2, duplication mode).
	MaxConcurrentReads int
	Unroll             int // duplication factor from outer parallelization
	NBuf               int // buffering depth after pipeline analysis
}

// VirtualAG is an address-generator allocation for one transfer leaf.
type VirtualAG struct {
	Name string
	// Origin is the provenance inherited from the transfer controller.
	Origin string
	Leaf   *dhdl.Controller
	Sparse bool
	Write  bool
	Unroll int
}

// Virtual is the virtual-unit view of a program.
type Virtual struct {
	Prog *dhdl.Program
	PCUs []*VirtualPCU
	PMUs []*VirtualPMU
	AGs  []*VirtualAG
	// OuterCtrls counts outer controllers, which map to control logic in
	// switches (Section 3.5).
	OuterCtrls int
}

func (v *Virtual) String() string {
	return fmt.Sprintf("virtual(%s): %d PCUs, %d PMUs, %d AGs, %d outer ctrls",
		v.Prog.Name, len(v.PCUs), len(v.PMUs), len(v.AGs), v.OuterCtrls)
}
