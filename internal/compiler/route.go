package compiler

import (
	"fmt"
	"sort"

	"plasticine/internal/arch"
	"plasticine/internal/stats"
)

// Route is one static point-to-point connection through the switch fabric:
// dimension-ordered (X then Y), one registered switch hop per step
// (Section 3.3).
type Route struct {
	From, To int      // node indices
	Hops     [][2]int // switch coordinates visited, in order
}

// RouteTable holds every routed edge plus per-link usage.
type RouteTable struct {
	Routes []Route
	// LinkUse counts routes crossing each directed link, keyed by
	// "x1,y1>x2,y2".
	LinkUse map[string]int
}

// MaxLinkUse returns the most-shared link's route count (static congestion:
// the vector network is statically allocated, so links carrying more than
// Capacity routes need time-multiplexing).
func (rt *RouteTable) MaxLinkUse() int {
	max := 0
	for _, n := range rt.LinkUse {
		if n > max {
			max = n
		}
	}
	return max
}

// AvgHops returns the mean route length in switch hops.
func (rt *RouteTable) AvgHops() float64 {
	if len(rt.Routes) == 0 {
		return 0
	}
	total := 0
	for _, r := range rt.Routes {
		total += len(r.Hops) - 1
	}
	return float64(total) / float64(len(rt.Routes))
}

// RouteAll routes every netlist edge with X-Y dimension-ordered routing on
// the switch grid. AGs sit at x = -1 or x = Cols and enter the fabric
// through their row.
func RouteAll(nl *Netlist, p arch.Params) *RouteTable {
	rt := &RouteTable{LinkUse: map[string]int{}}
	seen := map[[2]int]bool{}
	for i, nd := range nl.Nodes {
		for _, j := range nd.Edges {
			if j < i {
				continue // route each undirected edge once
			}
			key := [2]int{i, j}
			if seen[key] {
				continue
			}
			seen[key] = true
			r := Route{From: i, To: j, Hops: xyRoute(nd.X, nd.Y, nl.Nodes[j].X, nl.Nodes[j].Y)}
			rt.Routes = append(rt.Routes, r)
			for h := 1; h < len(r.Hops); h++ {
				a, b := r.Hops[h-1], r.Hops[h]
				rt.LinkUse[fmt.Sprintf("%d,%d>%d,%d", a[0], a[1], b[0], b[1])]++
			}
		}
	}
	return rt
}

// xyRoute walks X first, then Y.
func xyRoute(x1, y1, x2, y2 int) [][2]int {
	hops := [][2]int{{x1, y1}}
	step := func(d *int, target int) {
		if *d < target {
			*d++
		} else {
			*d--
		}
	}
	x, y := x1, y1
	for x != x2 {
		step(&x, x2)
		hops = append(hops, [2]int{x, y})
	}
	for y != y2 {
		step(&y, y2)
		hops = append(hops, [2]int{x, y})
	}
	return hops
}

// CongestionReport renders the busiest links.
func (rt *RouteTable) CongestionReport(top int) string {
	type lu struct {
		link string
		n    int
	}
	var all []lu
	for l, n := range rt.LinkUse {
		all = append(all, lu{l, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].link < all[j].link
	})
	if top > len(all) {
		top = len(all)
	}
	t := stats.New(fmt.Sprintf("interconnect: %d routes, %.1f avg hops, busiest links",
		len(rt.Routes), rt.AvgHops()), "Link", "Routes")
	for _, e := range all[:top] {
		t.Add(e.link, fmt.Sprint(e.n))
	}
	return t.String()
}
