package compiler

import (
	"errors"
	"fmt"
	"sort"

	"plasticine/internal/arch"
	"plasticine/internal/fault"
	"plasticine/internal/stats"
)

// ErrNoRoute is wrapped when a netlist edge cannot be routed because fault-
// disabled switches disconnect its endpoints.
var ErrNoRoute = errors.New("compiler: no route through healthy switches")

// NoRouteError identifies the unroutable edge, with the source-level
// origins of both endpoints so the failure can be reported against pattern
// nodes rather than physical coordinates alone.
type NoRouteError struct {
	From, To               string // node names
	FromOrigin, ToOrigin   string // endpoint provenance
	FromX, FromY, ToX, ToY int
}

func (e *NoRouteError) Error() string {
	return fmt.Sprintf("%v: %s (%d,%d) -> %s (%d,%d)", ErrNoRoute,
		e.From, e.FromX, e.FromY, e.To, e.ToX, e.ToY)
}

func (e *NoRouteError) Unwrap() error { return ErrNoRoute }

// Route is one static point-to-point connection through the switch fabric:
// dimension-ordered (X then Y), one registered switch hop per step
// (Section 3.3).
type Route struct {
	From, To int      // node indices
	Hops     [][2]int // switch coordinates visited, in order
}

// RouteTable holds every routed edge plus per-link usage.
type RouteTable struct {
	Routes []Route
	// LinkUse counts routes crossing each directed link, keyed by
	// "x1,y1>x2,y2".
	LinkUse map[string]int
}

// MaxLinkUse returns the most-shared link's route count (static congestion:
// the vector network is statically allocated, so links carrying more than
// Capacity routes need time-multiplexing).
func (rt *RouteTable) MaxLinkUse() int {
	max := 0
	for _, n := range rt.LinkUse {
		if n > max {
			max = n
		}
	}
	return max
}

// AvgHops returns the mean route length in switch hops.
func (rt *RouteTable) AvgHops() float64 {
	if len(rt.Routes) == 0 {
		return 0
	}
	total := 0
	for _, r := range rt.Routes {
		total += len(r.Hops) - 1
	}
	return float64(total) / float64(len(rt.Routes))
}

// RouteAll routes every netlist edge with X-Y dimension-ordered routing on
// the switch grid. AGs sit at x = -1 or x = Cols and enter the fabric
// through their row.
func RouteAll(nl *Netlist, p arch.Params) *RouteTable {
	rt, _ := RouteAllWithFaults(nl, p, nil)
	return rt
}

// RouteAllWithFaults routes every netlist edge, detouring around switches a
// fault plan disables. With no switch faults it reproduces RouteAll's X-Y
// dimension-ordered routes exactly; otherwise each affected edge takes the
// shortest healthy path (breadth-first, deterministic neighbour order). It
// fails (wrapping ErrNoRoute) when disabled switches disconnect an edge's
// endpoints.
func RouteAllWithFaults(nl *Netlist, p arch.Params, plan *fault.Plan) (*RouteTable, error) {
	rt := &RouteTable{LinkUse: map[string]int{}}
	seen := map[[2]int]bool{}
	faulty := plan.HasSwitchFaults()
	for i, nd := range nl.Nodes {
		for _, j := range nd.Edges {
			if j < i {
				continue // route each undirected edge once
			}
			key := [2]int{i, j}
			if seen[key] {
				continue
			}
			seen[key] = true
			to := nl.Nodes[j]
			var hops [][2]int
			if faulty {
				var ok bool
				hops, ok = detourRoute(nd.X, nd.Y, to.X, to.Y, p, plan)
				if !ok {
					return nil, &NoRouteError{From: nd.Name, To: to.Name,
						FromOrigin: nd.Origin, ToOrigin: to.Origin,
						FromX: nd.X, FromY: nd.Y, ToX: to.X, ToY: to.Y}
				}
			} else {
				hops = xyRoute(nd.X, nd.Y, to.X, to.Y)
			}
			r := Route{From: i, To: j, Hops: hops}
			rt.Routes = append(rt.Routes, r)
			for h := 1; h < len(r.Hops); h++ {
				a, b := r.Hops[h-1], r.Hops[h]
				rt.LinkUse[fmt.Sprintf("%d,%d>%d,%d", a[0], a[1], b[0], b[1])]++
			}
		}
	}
	return rt, nil
}

// detourRoute finds a shortest path on the switch grid from (x1,y1) to
// (x2,y2) avoiding fault-disabled switch sites. Endpoints are always usable
// (the unit's local switch port survives through-fabric switch faults).
// The grid spans x in [-1, Cols] to include the AG columns. BFS with a
// fixed neighbour order (+x, -x, +y, -y) keeps results deterministic.
func detourRoute(x1, y1, x2, y2 int, p arch.Params, plan *fault.Plan) ([][2]int, bool) {
	cols, rows := p.Chip.Cols, p.Chip.Rows
	w := cols + 2 // x offset by 1 to include AG columns at -1 and cols
	idx := func(x, y int) int { return (x + 1) + y*w }
	usable := func(x, y int) bool {
		if x < -1 || x > cols || y < 0 || y >= rows {
			return false
		}
		if x == x1 && y == y1 || x == x2 && y == y2 {
			return true
		}
		return !plan.SwitchDisabled(x, y)
	}
	if !usable(x1, y1) || !usable(x2, y2) {
		return nil, false
	}
	prev := make([]int, w*rows)
	for i := range prev {
		prev[i] = -2 // unvisited
	}
	start, goal := idx(x1, y1), idx(x2, y2)
	prev[start] = -1
	queue := []int{start}
	for len(queue) > 0 && prev[goal] == -2 {
		cur := queue[0]
		queue = queue[1:]
		cx, cy := cur%w-1, cur/w
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := cx+d[0], cy+d[1]
			if !usable(nx, ny) || prev[idx(nx, ny)] != -2 {
				continue
			}
			prev[idx(nx, ny)] = cur
			queue = append(queue, idx(nx, ny))
		}
	}
	if prev[goal] == -2 {
		return nil, false
	}
	var rev [][2]int
	for at := goal; at != -1; at = prev[at] {
		rev = append(rev, [2]int{at%w - 1, at / w})
	}
	hops := make([][2]int, len(rev))
	for i, h := range rev {
		hops[len(rev)-1-i] = h
	}
	return hops, true
}

// xyRoute walks X first, then Y.
func xyRoute(x1, y1, x2, y2 int) [][2]int {
	hops := [][2]int{{x1, y1}}
	step := func(d *int, target int) {
		if *d < target {
			*d++
		} else {
			*d--
		}
	}
	x, y := x1, y1
	for x != x2 {
		step(&x, x2)
		hops = append(hops, [2]int{x, y})
	}
	for y != y2 {
		step(&y, y2)
		hops = append(hops, [2]int{x, y})
	}
	return hops
}

// CongestionReport renders the busiest links.
func (rt *RouteTable) CongestionReport(top int) string {
	type lu struct {
		link string
		n    int
	}
	var all []lu
	for l, n := range rt.LinkUse {
		all = append(all, lu{l, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].link < all[j].link
	})
	if top > len(all) {
		top = len(all)
	}
	t := stats.New(fmt.Sprintf("interconnect: %d routes, %.1f avg hops, busiest links",
		len(rt.Routes), rt.AvgHops()), "Link", "Routes")
	for _, e := range all[:top] {
		t.Add(e.link, fmt.Sprint(e.n))
	}
	return t.String()
}
