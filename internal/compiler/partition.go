package compiler

import (
	"fmt"
	"math/bits"

	"plasticine/internal/arch"
)

// PhysPCU is one physical PCU's worth of a virtual PCU after partitioning.
type PhysPCU struct {
	Ops        []*VOp
	StagesUsed int
	MaxLive    int
	VecIns     int
	ScalIns    int
	VecOuts    int
	ScalOuts   int
}

// PartPCU maps one virtual PCU to its physical partitions.
type PartPCU struct {
	V     *VirtualPCU
	Parts []*PhysPCU
}

// Units returns physical PCUs needed including unrolling.
func (p PartPCU) Units() int { return len(p.Parts) * p.V.Unroll }

// PartPMU maps one virtual PMU to physical PMUs.
type PartPMU struct {
	V *VirtualPMU
	// Copies is physical PMUs per logical instance: capacity splits times
	// read-port duplication.
	Copies int
	// SupportPCUs is extra PCUs for address calculations that do not fit
	// the PMU datapath (Section 3.6: "PMUs become one PMU with zero or
	// more supporting PCUs").
	SupportPCUs int
}

// Units returns physical PMUs needed including unrolling.
func (p PartPMU) Units() int { return p.Copies * p.V.Unroll }

// Partitioned is the physical-unit requirement of a program under a
// parameter set, before placement.
type Partitioned struct {
	Virtual *Virtual
	PCUs    []PartPCU
	PMUs    []PartPMU

	TotalPCUs int
	TotalPMUs int
	TotalAGs  int

	// UsedFUSlots counts ALU slots executing real ops across all physical
	// PCUs (lanes x op stages), for FU utilization.
	UsedFUSlots int64
}

// originTag renders "name (origin)" for error messages, collapsing to the
// bare name when the origin adds nothing.
func originTag(name, origin string) string {
	if origin != "" && origin != name {
		return fmt.Sprintf("%s (%s)", name, origin)
	}
	return name
}

// reduceStages is the pipeline depth of a cross-lane reduction: log2(lanes)
// tree levels plus the accumulator stage. With 16 lanes this is 5, which is
// why Figure 7a marks fewer than 5 stages infeasible for most benchmarks.
func reduceStages(lanes int) int {
	if lanes <= 1 {
		return 1
	}
	return bits.Len(uint(lanes-1)) + 1
}

func opStageCost(op *VOp, lanes int) int {
	if op.Kind == ReduceOp {
		return reduceStages(lanes)
	}
	return 1
}

// reorderForPressure list-schedules the ops to minimise live op results:
// among ready ops it picks the one that retires the most dying values while
// adding its own, reducing the pipeline registers a partition needs.
func reorderForPressure(u *VirtualPCU) {
	n := len(u.Ops)
	if n < 3 {
		return
	}
	usesLeft := make(map[int]int, n) // op id -> remaining uses
	for _, op := range u.Ops {
		for _, a := range op.Args {
			if a.Kind == OpResult {
				usesLeft[a.ID]++
			}
		}
	}
	for _, o := range u.Outs {
		if o.Src.Kind == OpResult {
			usesLeft[o.Src.ID]++
		}
	}
	depsLeft := make([]int, n)
	dependents := make([][]int, n)
	for _, op := range u.Ops {
		for _, a := range op.Args {
			if a.Kind == OpResult {
				depsLeft[op.ID]++
				dependents[a.ID] = append(dependents[a.ID], op.ID)
			}
		}
	}
	var order []*VOp
	scheduled := make([]bool, n)
	for len(order) < n {
		best, bestScore := -1, 1<<30
		for _, op := range u.Ops {
			if scheduled[op.ID] || depsLeft[op.ID] != 0 {
				continue
			}
			dying := 0
			seen := map[int]bool{}
			for _, a := range op.Args {
				if a.Kind == OpResult && !seen[a.ID] {
					seen[a.ID] = true
					if usesLeft[a.ID] == 1 {
						dying++
					}
				}
			}
			score := 1 - dying // lower is better
			if score < bestScore {
				best, bestScore = op.ID, score
			}
		}
		op := u.Ops[best]
		scheduled[best] = true
		order = append(order, op)
		for _, a := range op.Args {
			if a.Kind == OpResult {
				usesLeft[a.ID]--
			}
		}
		for _, d := range dependents[best] {
			depsLeft[d]--
		}
	}
	// Renumber ops and remap references.
	remap := make([]int, n)
	for newID, op := range order {
		remap[op.ID] = newID
	}
	for _, op := range order {
		for i, a := range op.Args {
			if a.Kind == OpResult {
				op.Args[i].ID = remap[a.ID]
			}
		}
	}
	for i := range u.Outs {
		if u.Outs[i].Src.Kind == OpResult {
			u.Outs[i].Src.ID = remap[u.Outs[i].Src.ID]
		}
	}
	for newID, op := range order {
		op.ID = newID
	}
	u.Ops = order
}

// PartitionPCU splits a virtual PCU into physical PCUs under the given
// parameters using the paper's greedy heuristic with a cost metric of
// physical stages, live values per stage, and IO buses (Section 3.6).
//
// PartitionPCU is read-only with respect to u (pressure-aware op ordering
// happens once, in Allocate), so many goroutines may partition the same
// virtual unit against different candidate parameters concurrently — the
// access pattern of a parallel design-space sweep.
func PartitionPCU(u *VirtualPCU, p arch.PCUParams) ([]*PhysPCU, error) {
	if u.Lanes > p.Lanes {
		return nil, fmt.Errorf("compiler: %s needs %d lanes, PCU has %d", originTag(u.Name, u.Origin), u.Lanes, p.Lanes)
	}
	// Use positions: op results carry a def position and last use; input
	// streams carry every use position (a stream enters each partition
	// that uses it directly from its source PMU/FIFO — it does not pass
	// through partitions that ignore it). Output sources count as a use
	// at position n.
	n := len(u.Ops)
	resUses := map[int][]int{}  // op result -> use positions
	vecUses := map[int][]int{}  // vec input -> use positions
	scalUses := map[int][]int{} // scal input -> use positions
	for i, op := range u.Ops {
		for _, a := range op.Args {
			switch a.Kind {
			case OpResult:
				resUses[a.ID] = append(resUses[a.ID], i)
			case VecIn:
				vecUses[a.ID] = append(vecUses[a.ID], i)
			case ScalIn:
				scalUses[a.ID] = append(scalUses[a.ID], i)
			}
		}
	}
	for _, o := range u.Outs {
		switch o.Src.Kind {
		case OpResult:
			resUses[o.Src.ID] = append(resUses[o.Src.ID], n)
		case VecIn:
			vecUses[o.Src.ID] = append(vecUses[o.Src.ID], n)
		case ScalIn:
			scalUses[o.Src.ID] = append(scalUses[o.Src.ID], n)
		}
	}

	// A unit with no ops (pure data movement) still occupies one stage.
	if n == 0 {
		vi, si := len(u.VecIns), len(u.ScalIns)
		vo, so := outCounts(u, 0, 0)
		part := &PhysPCU{StagesUsed: 1, VecIns: vi, ScalIns: si, VecOuts: vo, ScalOuts: so, MaxLive: vi}
		if err := checkPart(u, part, p); err != nil {
			return nil, err
		}
		return []*PhysPCU{part}, nil
	}

	var parts []*PhysPCU
	start := 0
	for start < n {
		// Extend the current partition as far as constraints allow.
		end := start
		var best *PhysPCU
		for end < n {
			cand := buildPart(u, start, end+1, n, resUses, vecUses, scalUses)
			if violates(cand, p) {
				break
			}
			best = cand
			end++
		}
		if best == nil {
			cand := buildPart(u, start, start+1, n, resUses, vecUses, scalUses)
			return nil, fmt.Errorf("compiler: %s: op %d alone violates PCU constraints (stages=%d live=%d vecIn=%d scalIn=%d vecOut=%d scalOut=%d vs %+v)",
				originTag(u.Name, u.Origin), start, cand.StagesUsed, cand.MaxLive, cand.VecIns, cand.ScalIns, cand.VecOuts, cand.ScalOuts, p)
		}
		parts = append(parts, best)
		start = end
	}
	return parts, nil
}

// usedIn reports whether any use position falls in [start,end), treating a
// use at n (an output) as belonging to the final partition (end == n).
func usedIn(uses []int, start, end, n int) bool {
	for _, u := range uses {
		if u >= start && u < end {
			return true
		}
		if u == n && end == n {
			return true
		}
	}
	return false
}

// buildPart materialises the partition [start,end) and computes its cost
// metrics: stages, live values, and IO buses. Values cross between
// partitions point-to-point over the vector network: a result produced in
// one partition enters exactly the partitions that consume it (it does not
// pass through unrelated partitions), costing the producer one vector
// output and each consumer one vector input.
func buildPart(u *VirtualPCU, start, end, n int,
	resUses, vecUses, scalUses map[int][]int) *PhysPCU {

	part := &PhysPCU{Ops: u.Ops[start:end]}
	for _, op := range part.Ops {
		part.StagesUsed += opStageCost(op, u.Lanes)
	}
	// Vector inputs: external streams used here plus results produced by
	// earlier partitions and consumed here.
	for _, uses := range vecUses {
		if usedIn(uses, start, end, n) {
			part.VecIns++
		}
	}
	crossIn := 0
	for id, uses := range resUses {
		if id < start && usedIn(uses, start, end, n) {
			crossIn++
		}
	}
	part.VecIns += crossIn
	// Scalar inputs used in this range.
	for _, uses := range scalUses {
		if usedIn(uses, start, end, n) {
			part.ScalIns++
		}
	}
	// Outputs: values defined here and consumed by a later partition's op
	// cross out once each (program outputs at position n leave from the
	// defining partition and are counted by outCounts below).
	crossOut := 0
	lastOpUseOf := func(id int) int {
		last := -1
		for _, p := range resUses[id] {
			if p < n && p > last {
				last = p
			}
		}
		return last
	}
	lastUseOf := func(id int) int {
		last := -1
		for _, p := range resUses[id] {
			if p > last {
				last = p
			}
		}
		return last
	}
	for id := start; id < end; id++ {
		if lastOpUseOf(id) >= end {
			crossOut++
		}
	}
	vo, so := outCounts(u, start, end)
	part.VecOuts = vo + crossOut
	part.ScalOuts = so
	// Live values: results in flight inside this partition (defined here,
	// still needed at a later position) plus everything entering it.
	maxLive := 0
	for i := start + 1; i <= end; i++ {
		c := 0
		for id := start; id < i; id++ {
			if _, ok := resUses[id]; ok && lastUseOf(id) >= i {
				c++
			}
		}
		if c > maxLive {
			maxLive = c
		}
	}
	part.MaxLive = maxLive + part.VecIns
	return part
}

// outCounts returns program-level vector/scalar outputs sourced from ops in
// [start,end), or from inputs when the unit has no ops in range and is the
// last partition.
func outCounts(u *VirtualPCU, start, end int) (vec, scal int) {
	for _, o := range u.Outs {
		inRange := false
		switch o.Src.Kind {
		case OpResult:
			inRange = o.Src.ID >= start && o.Src.ID < end
		default:
			// Input-sourced outputs leave from the final partition.
			inRange = end >= len(u.Ops)
		}
		if !inRange {
			continue
		}
		if o.Kind == OutScalReg {
			scal++
		} else {
			vec++
		}
	}
	return vec, scal
}

func violates(part *PhysPCU, p arch.PCUParams) bool {
	return part.StagesUsed > p.Stages ||
		part.MaxLive > p.Registers ||
		part.VecIns > p.VectorIns ||
		part.ScalIns > p.ScalarIns ||
		part.VecOuts > p.VectorOuts ||
		part.ScalOuts > p.ScalarOuts
}

func checkPart(u *VirtualPCU, part *PhysPCU, p arch.PCUParams) error {
	if violates(part, p) {
		return fmt.Errorf("compiler: %s: unit violates PCU constraints (stages=%d live=%d vecIn=%d scalIn=%d vecOut=%d scalOut=%d vs %+v)",
			originTag(u.Name, u.Origin), part.StagesUsed, part.MaxLive, part.VecIns, part.ScalIns, part.VecOuts, part.ScalOuts, p)
	}
	return nil
}

// PartitionPMU computes the physical PMUs and supporting PCUs one virtual
// PMU needs under the given parameters.
func PartitionPMU(m *VirtualPMU, p arch.Params) (PartPMU, error) {
	capacityWords := p.PMU.BankKB * 1024 / 4 * p.PMU.Banks
	need := m.Mem.Size * m.NBuf
	copies := (need + capacityWords - 1) / capacityWords
	if copies < 1 {
		copies = 1
	}
	// Concurrent read streams beyond the PMU's vector outputs require
	// content duplication across PMUs.
	if m.MaxConcurrentReads > p.PMU.VectorOuts && p.PMU.VectorOuts > 0 {
		dup := (m.MaxConcurrentReads + p.PMU.VectorOuts - 1) / p.PMU.VectorOuts
		copies *= dup
	}
	support := 0
	addrOps := m.AddrOps + m.RMWOps
	if addrOps > p.PMU.Stages {
		support = (addrOps - p.PMU.Stages + p.PCU.Stages - 1) / p.PCU.Stages
	}
	return PartPMU{V: m, Copies: copies, SupportPCUs: support}, nil
}

// Partition maps every virtual unit to physical units under params.
func Partition(v *Virtual, params arch.Params) (*Partitioned, error) {
	out := &Partitioned{Virtual: v}
	for _, u := range v.PCUs {
		parts, err := PartitionPCU(u, params.PCU)
		if err != nil {
			return nil, err
		}
		pp := PartPCU{V: u, Parts: parts}
		out.PCUs = append(out.PCUs, pp)
		out.TotalPCUs += pp.Units()
		for _, part := range parts {
			slots := 0
			for _, op := range part.Ops {
				slots += opStageCost(op, u.Lanes) * u.Lanes
			}
			if len(part.Ops) == 0 {
				slots = u.Lanes // pass-through stage
			}
			out.UsedFUSlots += int64(slots * u.Unroll)
		}
	}
	for _, m := range v.PMUs {
		pm, err := PartitionPMU(m, params)
		if err != nil {
			return nil, err
		}
		out.PMUs = append(out.PMUs, pm)
		out.TotalPMUs += pm.Units()
		out.TotalPCUs += pm.SupportPCUs * pm.V.Unroll
	}
	for _, ag := range v.AGs {
		out.TotalAGs += ag.Unroll
	}
	return out, nil
}
