package compiler

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"plasticine/internal/arch"
	"plasticine/internal/dhdl"
	"plasticine/internal/fault"
	"plasticine/internal/stats"
)

// OriginDemand is the physical-unit demand one source-level origin places on
// the resource that ran out.
type OriginDemand struct {
	Origin string   // pattern node / controller provenance
	Units  int      // physical units of the short resource this origin needs
	Names  []string // virtual units behind the demand (for drill-down)
}

// Explanation is the structured fit report of a program against a parameter
// set: either "it fits" with utilization, or a named failure with the source
// nodes that caused it, ranked by demand. It never panics and is produced
// even when compilation fails — it exists to turn a bare ErrInsufficient or
// ErrNoRoute into something a pattern author can act on.
type Explanation struct {
	Program string
	Fits    bool
	Err     string `json:",omitempty"` // failure message when !Fits

	// Set when the failure wraps ErrInsufficient.
	Resource  string         `json:",omitempty"` // "PCU", "PMU", or "AG"
	Need      int            `json:",omitempty"`
	Have      int            `json:",omitempty"`
	Disabled  int            `json:",omitempty"`
	Offenders []OriginDemand `json:",omitempty"` // demand per origin, descending

	// Set when the failure wraps ErrNoRoute.
	RouteFrom       string `json:",omitempty"`
	RouteTo         string `json:",omitempty"`
	RouteFromOrigin string `json:",omitempty"`
	RouteToOrigin   string `json:",omitempty"`

	// Util is the fabric occupancy when the program fits.
	Util *Utilization `json:",omitempty"`
	// Passes covers every pass that ran, including the failing one.
	Passes *PassTrace `json:",omitempty"`
}

// Explain compiles a program and reports, in source-level terms, whether it
// fits the fabric described by params (under an optional fault plan) and —
// when it does not — which pattern nodes demanded the resource that ran out.
func Explain(p *dhdl.Program, params arch.Params, plan *fault.Plan) *Explanation {
	ex := &Explanation{Program: p.Name}
	m, pt, err := CompileTraced(p, params, plan)
	ex.Passes = pt
	if err == nil {
		ex.Fits = true
		ex.Util = &m.Util
		return ex
	}
	ex.Err = err.Error()

	var ins *InsufficientError
	if errors.As(err, &ins) {
		ex.Resource = ins.Resource
		ex.Need, ex.Have, ex.Disabled = ins.Need, ins.Have, ins.Disabled
		ex.Offenders = originDemand(p, params, ins.Resource)
	}
	var nr *NoRouteError
	if errors.As(err, &nr) {
		ex.RouteFrom, ex.RouteTo = nr.From, nr.To
		ex.RouteFromOrigin, ex.RouteToOrigin = nr.FromOrigin, nr.ToOrigin
	}
	return ex
}

// originDemand recomputes the virtual/partitioned view (which must have
// succeeded for a fit or placement failure to be reachable) and aggregates
// the short resource's demand per origin, descending. It returns nil when
// the earlier passes cannot be replayed.
func originDemand(p *dhdl.Program, params arch.Params, resource string) []OriginDemand {
	v, err := Allocate(p)
	if err != nil {
		return nil
	}
	part, err := Partition(v, params)
	if err != nil {
		return nil
	}
	acc := map[string]*OriginDemand{}
	add := func(origin, name string, units int) {
		if units <= 0 {
			return
		}
		d, ok := acc[origin]
		if !ok {
			d = &OriginDemand{Origin: origin}
			acc[origin] = d
		}
		d.Units += units
		d.Names = append(d.Names, name)
	}
	switch resource {
	case "PCU":
		for _, pc := range part.PCUs {
			add(pc.V.Origin, pc.V.Name, pc.Units())
		}
		for _, pm := range part.PMUs {
			// Address-datapath overflow consumes PCUs on behalf of a memory.
			add(pm.V.Origin, pm.V.Name+" (addr support)", pm.SupportPCUs*pm.V.Unroll)
		}
	case "PMU":
		for _, pm := range part.PMUs {
			add(pm.V.Origin, pm.V.Name, pm.Units())
		}
	case "AG":
		for _, ag := range v.AGs {
			add(ag.Origin, ag.Name, ag.Unroll)
		}
	}
	out := make([]OriginDemand, 0, len(acc))
	for _, d := range acc {
		sort.Strings(d.Names)
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Units != out[j].Units {
			return out[i].Units > out[j].Units
		}
		return out[i].Origin < out[j].Origin
	})
	return out
}

// String renders the explanation for terminals.
func (ex *Explanation) String() string {
	var b strings.Builder
	if ex.Fits {
		fmt.Fprintf(&b, "%s: fits", ex.Program)
		if ex.Util != nil {
			fmt.Fprintf(&b, " (PCU %.1f%%, PMU %.1f%%, AG %.1f%%)",
				100*ex.Util.PCUFrac, 100*ex.Util.PMUFrac, 100*ex.Util.AGFrac)
		}
		b.WriteByte('\n')
	} else {
		fmt.Fprintf(&b, "%s: does not fit: %s\n", ex.Program, ex.Err)
		if ex.Resource != "" {
			shortfall := ex.Need - ex.Have
			fmt.Fprintf(&b, "  short %d %s(s): need %d, have %d healthy", shortfall, ex.Resource, ex.Need, ex.Have)
			if ex.Disabled > 0 {
				fmt.Fprintf(&b, " (%d disabled by faults)", ex.Disabled)
			}
			b.WriteByte('\n')
		}
		if len(ex.Offenders) > 0 {
			t := stats.New(fmt.Sprintf("%s demand by source node", ex.Resource),
				"Origin", ex.Resource+"s", "Share", "Units")
			for _, d := range ex.Offenders {
				names := strings.Join(d.Names, ", ")
				if len(names) > 48 {
					names = names[:45] + "..."
				}
				t.Add(d.Origin, fmt.Sprint(d.Units),
					stats.Pct(float64(d.Units)/float64(ex.Need)), names)
			}
			b.WriteString(t.String())
		}
		if ex.RouteFrom != "" {
			fmt.Fprintf(&b, "  unroutable edge: %s (from %s) -> %s (from %s)\n",
				ex.RouteFrom, ex.RouteFromOrigin, ex.RouteTo, ex.RouteToOrigin)
		}
	}
	if ex.Passes != nil {
		b.WriteString(ex.Passes.String())
	}
	return b.String()
}
