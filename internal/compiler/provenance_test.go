package compiler

import (
	"strings"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/dhdl"
	"plasticine/internal/fault"
	"plasticine/internal/pattern"
)

// buildOriginDot is the dot-product fixture with source-level origins, as the
// pattern lowerer (and annotated workloads) would stamp them.
func buildOriginDot(n, tile, lanes, par int) *dhdl.Program {
	b := dhdl.NewBuilder("dot", dhdl.Sequential)
	b.SetOrigin("Fold/load:a")
	a := b.DRAMF32("a", n)
	ta := b.SRAM("ta", pattern.F32, tile)
	b.SetOrigin("Fold/load:b")
	bv := b.DRAMF32("b", n)
	tb := b.SRAM("tb", pattern.F32, tile)
	b.SetOrigin("Fold/F")
	partial := b.Reg("partial", pattern.VF(0))
	b.SetOrigin("Fold/combine")
	total := b.Reg("total", pattern.VF(0))
	b.SetOrigin("Fold/tiles")
	b.Pipe("tiles", []dhdl.Counter{dhdl.CStepPar(0, n, tile, par)}, func(ix []dhdl.Expr) {
		b.SetOrigin("Fold/load:a")
		b.Load("loadA", a, ix[0], ta, tile)
		b.SetOrigin("Fold/load:b")
		b.Load("loadB", bv, ix[0], tb, tile)
		b.SetOrigin("Fold/F")
		b.Compute("mac", []dhdl.Counter{dhdl.CPar(tile, lanes)}, func(jx []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.Accum(partial, pattern.Add, dhdl.Mul(dhdl.Ld(ta, jx[0]), dhdl.Ld(tb, jx[0])))}
		})
		b.SetOrigin("Fold/combine")
		b.Compute("acc", nil, func([]dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.SetReg(total, dhdl.Add(dhdl.Rd(total), dhdl.Rd(partial)))}
		})
	})
	return b.MustBuild()
}

// TestNetlistCarriesOrigins: every netlist node of a compiled program has a
// non-empty Origin, and nodes built from origin-annotated controllers carry
// the source-level name rather than the physical one.
func TestNetlistCarriesOrigins(t *testing.T) {
	m, err := Compile(buildOriginDot(1024, 256, 16, 1), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	wantPrefix := map[string]bool{}
	for _, nd := range m.Netlist.Nodes {
		if nd.Origin == "" {
			t.Errorf("node %s has empty origin", nd.Name)
		}
		if strings.HasPrefix(nd.Origin, "Fold/") {
			wantPrefix[nd.Origin] = true
		}
	}
	for _, origin := range []string{"Fold/load:a", "Fold/load:b", "Fold/F", "Fold/combine"} {
		if !wantPrefix[origin] {
			t.Errorf("no netlist node carries origin %q", origin)
		}
	}
}

// TestNetlistOriginFallsBackToName: hand-written DHDL without SetOrigin still
// yields full provenance (origin == unit name, never empty).
func TestNetlistOriginFallsBackToName(t *testing.T) {
	m, err := Compile(buildDotProgram(1024, 256, 16), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range m.Netlist.Nodes {
		if nd.Origin == "" {
			t.Errorf("node %s has empty origin", nd.Name)
		}
		if !strings.HasPrefix(nd.Origin, nd.Name[:1]) && nd.Origin != nd.Name {
			continue // split parts keep the parent's name prefix; nothing to assert
		}
	}
}

// TestPassTraceRecordsPipeline: a successful compile records every pass of
// the pipeline, in order, with wall times and structured stats.
func TestPassTraceRecordsPipeline(t *testing.T) {
	m, pt, err := CompileTraced(buildOriginDot(1024, 256, 16, 1), arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Passes != pt {
		t.Fatal("mapping does not reference the returned pass trace")
	}
	want := []string{"validate", "allocate", "partition", "fit-check", "netlist", "place", "route", "timing"}
	if len(pt.Entries) != len(want) {
		t.Fatalf("got %d pass entries, want %d: %v", len(pt.Entries), len(want), pt.String())
	}
	for i, e := range pt.Entries {
		if e.Name != want[i] {
			t.Errorf("pass %d is %q, want %q", i, e.Name, want[i])
		}
		if e.Err != "" {
			t.Errorf("pass %s failed on a fitting program: %s", e.Name, e.Err)
		}
	}
	byName := map[string]*PassEntry{}
	for _, e := range pt.Entries {
		byName[e.Name] = e
	}
	if byName["allocate"].Stats["virtual_pcus"] != 2 {
		t.Errorf("allocate virtual_pcus = %d, want 2", byName["allocate"].Stats["virtual_pcus"])
	}
	if byName["place"].Stats["wirelength"] <= 0 {
		t.Error("place recorded no wirelength")
	}
	if byName["route"].Stats["routes"] <= 0 {
		t.Error("route recorded no routes")
	}
	hops := false
	for k := range byName["route"].Stats {
		if strings.HasPrefix(k, "route_hops[") {
			hops = true
		}
	}
	if !hops {
		t.Error("route recorded no route-length histogram")
	}
	if pt.TotalNS() <= 0 {
		t.Error("pass trace has no wall time")
	}
}

// TestPassTraceSurvivesFailure: a compile that cannot fit still returns the
// trace up to and including the failing pass.
func TestPassTraceSurvivesFailure(t *testing.T) {
	params := arch.Default()
	params.Chip.Cols, params.Chip.Rows = 2, 2
	m, pt, err := CompileTraced(buildOriginDot(1<<16, 256, 16, 8), params, nil)
	if err == nil {
		t.Fatal("expected a fit failure on a 2x2 fabric")
	}
	if m != nil {
		t.Fatal("failed compile returned a mapping")
	}
	if pt == nil || len(pt.Entries) == 0 {
		t.Fatal("failed compile returned no pass trace")
	}
	last := pt.Entries[len(pt.Entries)-1]
	if last.Err == "" {
		t.Errorf("last pass %q has no recorded error", last.Name)
	}
}

// TestExplainNamesOffendingOrigins is the acceptance criterion: on a
// too-large program, Explain names the pattern nodes demanding the resource
// that ran out — structured, never a panic.
func TestExplainNamesOffendingOrigins(t *testing.T) {
	params := arch.Default()
	params.Chip.Cols, params.Chip.Rows = 2, 2
	ex := Explain(buildOriginDot(1<<16, 256, 16, 8), params, nil)
	if ex.Fits {
		t.Fatal("2x2 fabric reported as fitting")
	}
	if ex.Resource == "" || ex.Need <= ex.Have {
		t.Fatalf("no structured shortfall: %+v", ex)
	}
	if len(ex.Offenders) == 0 {
		t.Fatal("no offenders named")
	}
	seen := map[string]bool{}
	total := 0
	for _, d := range ex.Offenders {
		seen[d.Origin] = true
		total += d.Units
		if d.Units <= 0 || len(d.Names) == 0 {
			t.Errorf("offender %q has no demand detail: %+v", d.Origin, d)
		}
	}
	if total != ex.Need {
		t.Errorf("offender demand sums to %d, want Need=%d", total, ex.Need)
	}
	found := false
	for origin := range seen {
		if strings.HasPrefix(origin, "Fold/") {
			found = true
		}
	}
	if !found {
		t.Errorf("offenders carry no source-level origins: %v", seen)
	}
	if s := ex.String(); !strings.Contains(s, "demand by source node") {
		t.Errorf("rendered explanation lacks the demand table:\n%s", s)
	}
}

// TestExplainFits: a fitting program reports utilization and the full pass
// trace.
func TestExplainFits(t *testing.T) {
	ex := Explain(buildOriginDot(1024, 256, 16, 1), arch.Default(), nil)
	if !ex.Fits {
		t.Fatalf("dot fixture does not fit the default fabric: %s", ex.Err)
	}
	if ex.Util == nil || ex.Util.PCUFrac <= 0 {
		t.Error("fitting explanation has no utilization")
	}
	if ex.Passes == nil || len(ex.Passes.Entries) == 0 {
		t.Error("fitting explanation has no pass trace")
	}
}

// TestRepairExtendsPassTrace: a mid-run repair appends its own entry to the
// mapping's pass trace so compile and repair read as one pipeline.
func TestRepairExtendsPassTrace(t *testing.T) {
	m := compileDot(t)
	before := len(m.Passes.Entries)
	victim := pickOccupied(t, m, NodePCU)
	plan := fault.ManualPlan([]fault.Coord{{X: victim.X, Y: victim.Y}}, nil, nil, nil)
	if _, err := Repair(m, plan); err != nil {
		t.Fatal(err)
	}
	if len(m.Passes.Entries) != before+1 {
		t.Fatalf("repair appended %d entries, want 1", len(m.Passes.Entries)-before)
	}
	e := m.Passes.Entries[before]
	if e.Name != "repair" {
		t.Fatalf("appended pass is %q, want repair", e.Name)
	}
	if e.Stats["moved_pcus"] != 1 {
		t.Errorf("repair stats moved_pcus = %d, want 1", e.Stats["moved_pcus"])
	}
	// Provenance survives the move: the victim keeps its origin.
	if victim.Origin == "" {
		t.Error("moved node lost its origin")
	}
}

// TestSummaryIncludesOrigin: the human-readable mapping summary names the
// originating source node next to physical coordinates.
func TestSummaryIncludesOrigin(t *testing.T) {
	m, err := Compile(buildOriginDot(1024, 256, 16, 1), arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	if !strings.Contains(s, "Fold/F") {
		t.Errorf("summary lacks source origins:\n%s", s)
	}
}
