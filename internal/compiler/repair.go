package compiler

import (
	"fmt"
	"sort"
	"time"

	"plasticine/internal/arch"
	"plasticine/internal/fault"
)

// RepairReport counts what a mapping repair changed, for recovery-overhead
// accounting (the reconfiguration cost scales with these numbers).
type RepairReport struct {
	MovedPCUs     int  // PCU netlist nodes re-placed off newly dead tiles
	MovedPMUs     int  // PMU netlist nodes re-placed off newly dead tiles
	ReroutedEdges int  // routes patched around dead switches or moved units
	FullRecompile bool // incremental repair failed; the whole mapping was redone
}

// MovedUnits is the total number of re-placed units.
func (r *RepairReport) MovedUnits() int { return r.MovedPCUs + r.MovedPMUs }

func (r *RepairReport) String() string {
	mode := "incremental"
	if r.FullRecompile {
		mode = "full recompile"
	}
	return fmt.Sprintf("repair (%s): %d unit(s) moved (%d PCU, %d PMU), %d route(s) redone",
		mode, r.MovedUnits(), r.MovedPCUs, r.MovedPMUs, r.ReroutedEdges)
}

// Repair updates a compiled mapping after new faults appear mid-run,
// following a three-rung decision ladder:
//
//  1. Incremental: re-place only the units sitting on newly dead tiles
//     (every healthy assignment is preserved) and re-route only the edges
//     that cross a dead switch or touch a moved unit.
//  2. Full recompile: if no healthy free slot or detour exists, recompile
//     the whole program against the extended fault plan.
//  3. Structured failure: if even a full recompile cannot fit, the error
//     wraps ErrInsufficient (or ErrNoRoute) for the caller to surface.
//
// plan must be the extended fault plan (prior faults plus the new ones); it
// replaces m.Faults. The simulator-facing timing maps (Leaves, Mems) are
// deliberately left untouched on the incremental path so an in-flight
// activity graph remains valid; detour latency is second-order next to the
// reconfiguration stall and is absorbed into the recovery penalty.
func Repair(m *Mapping, plan *fault.Plan) (*RepairReport, error) {
	t0 := time.Now()
	rep := &RepairReport{}
	defer func() {
		// The repair extends the mapping's pass trace so post-mortem tooling
		// sees compile and repair as one pipeline.
		m.LastRepair = rep
		mode := int64(0)
		if rep.FullRecompile {
			mode = 1
		}
		m.Passes.Add(&PassEntry{
			Name:   "repair",
			WallNS: time.Since(t0).Nanoseconds(),
			Detail: rep.String(),
			Stats: map[string]int64{
				"moved_pcus": int64(rep.MovedPCUs), "moved_pmus": int64(rep.MovedPMUs),
				"rerouted_edges": int64(rep.ReroutedEdges), "full_recompile": mode,
			},
		})
	}()
	nl := m.Netlist
	p := m.Params

	// 1. Which units sit on tiles the extended plan kills?
	var displaced []int
	occupied := map[[2]int]bool{}
	for i, nd := range nl.Nodes {
		switch nd.Kind {
		case NodePCU:
			if plan.PCUDisabled(nd.X, nd.Y) {
				displaced = append(displaced, i)
				continue
			}
		case NodePMU:
			if plan.PMUDisabled(nd.X, nd.Y) {
				displaced = append(displaced, i)
				continue
			}
		}
		occupied[[2]int{nd.X, nd.Y}] = true
	}

	moved := map[int]bool{}
	if len(displaced) > 0 {
		if ok := replaceDisplaced(nl, p, plan, displaced, occupied, moved, rep); !ok {
			return fullRecompile(m, plan, rep)
		}
	}

	// 2. Patch routes that cross a newly dead switch or touch a moved unit.
	if m.Routes != nil {
		if ok := patchRoutes(m, plan, moved, rep); !ok {
			return fullRecompile(m, plan, rep)
		}
	}
	m.Faults = plan
	return rep, nil
}

// replaceDisplaced greedily re-places each displaced node onto the nearest
// free healthy slot of its kind (min Manhattan cost to its already-placed
// neighbours — the same cost the original placer used). Deterministic:
// displaced nodes go in netlist order; candidate slots are scanned
// centre-out in a fixed order.
func replaceDisplaced(nl *Netlist, p arch.Params, plan *fault.Plan, displaced []int,
	occupied map[[2]int]bool, moved map[int]bool, rep *RepairReport) bool {
	cols, rows := p.Chip.Cols, p.Chip.Rows
	cx, cy := cols/2, rows/2
	type slot struct{ x, y int }
	var free [2][]slot // indexed by NodeKind (NodePCU, NodePMU)
	var all []slot
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			all = append(all, slot{x, y})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		di := absInt(all[i].x-cx) + absInt(all[i].y-cy)
		dj := absInt(all[j].x-cx) + absInt(all[j].y-cy)
		if di != dj {
			return di < dj
		}
		if all[i].y != all[j].y {
			return all[i].y < all[j].y
		}
		return all[i].x < all[j].x
	})
	for _, s := range all {
		if occupied[[2]int{s.x, s.y}] {
			continue
		}
		if (s.x+s.y)%2 == 0 {
			if !plan.PCUDisabled(s.x, s.y) {
				free[NodePCU] = append(free[NodePCU], s)
			}
		} else if !plan.PMUDisabled(s.x, s.y) {
			free[NodePMU] = append(free[NodePMU], s)
		}
	}
	for _, i := range displaced {
		nd := nl.Nodes[i]
		cand := free[nd.Kind]
		best, bestCost := -1, 1<<30
		for ci, s := range cand {
			cost, n := 0, 0
			for _, e := range nd.Edges {
				o := nl.Nodes[e]
				if moved[e] || !plan.PCUDisabled(o.X, o.Y) && !plan.PMUDisabled(o.X, o.Y) {
					cost += absInt(o.X-s.x) + absInt(o.Y-s.y)
					n++
				}
			}
			if n == 0 {
				cost = absInt(s.x-cx) + absInt(s.y-cy)
			}
			if cost < bestCost {
				best, bestCost = ci, cost
			}
		}
		if best < 0 {
			return false // no free healthy slot: fall back
		}
		s := cand[best]
		free[nd.Kind] = append(cand[:best:best], cand[best+1:]...)
		nd.X, nd.Y = s.x, s.y
		moved[i] = true
		if nd.Kind == NodePCU {
			rep.MovedPCUs++
		} else {
			rep.MovedPMUs++
		}
	}
	return true
}

// patchRoutes re-routes only the edges that cross a dead switch or end at a
// moved unit, updating per-link usage incrementally.
func patchRoutes(m *Mapping, plan *fault.Plan, moved map[int]bool, rep *RepairReport) bool {
	nl, rt := m.Netlist, m.Routes
	linkKey := func(a, b [2]int) string {
		return fmt.Sprintf("%d,%d>%d,%d", a[0], a[1], b[0], b[1])
	}
	needsPatch := func(r Route) bool {
		if moved[r.From] || moved[r.To] {
			return true
		}
		for _, h := range r.Hops[1:max(len(r.Hops)-1, 1)] {
			if plan.SwitchDisabled(h[0], h[1]) {
				return true
			}
		}
		return false
	}
	for ri := range rt.Routes {
		r := rt.Routes[ri]
		if !needsPatch(r) {
			continue
		}
		from, to := nl.Nodes[r.From], nl.Nodes[r.To]
		var hops [][2]int
		if plan.HasSwitchFaults() {
			var ok bool
			hops, ok = detourRoute(from.X, from.Y, to.X, to.Y, m.Params, plan)
			if !ok {
				return false // disconnected: fall back to full recompile
			}
		} else {
			hops = xyRoute(from.X, from.Y, to.X, to.Y)
		}
		for h := 1; h < len(r.Hops); h++ {
			k := linkKey(r.Hops[h-1], r.Hops[h])
			if rt.LinkUse[k]--; rt.LinkUse[k] <= 0 {
				delete(rt.LinkUse, k)
			}
		}
		for h := 1; h < len(hops); h++ {
			rt.LinkUse[linkKey(hops[h-1], hops[h])]++
		}
		rt.Routes[ri].Hops = hops
		rep.ReroutedEdges++
	}
	return true
}

// fullRecompile is rung two of the ladder: recompile the whole program
// against the extended plan and splice the result into m. The returned
// counts cover every unit whose position changed.
func fullRecompile(m *Mapping, plan *fault.Plan, rep *RepairReport) (*RepairReport, error) {
	rep.FullRecompile = true
	fresh, freshPT, err := CompileTraced(m.Prog, m.Params, plan)
	if freshPT != nil {
		// Keep the recompile's per-pass record, marked as repair work.
		for _, e := range freshPT.Entries {
			m.Passes.Add(&PassEntry{Name: "repair/" + e.Name, WallNS: e.WallNS,
				Detail: e.Detail, Stats: e.Stats, Err: e.Err})
		}
	}
	if err != nil {
		return rep, err // wraps ErrInsufficient / ErrNoRoute
	}
	rep.MovedPCUs, rep.MovedPMUs, rep.ReroutedEdges = 0, 0, len(fresh.Routes.Routes)
	if len(fresh.Netlist.Nodes) == len(m.Netlist.Nodes) {
		for i, nd := range fresh.Netlist.Nodes {
			old := m.Netlist.Nodes[i]
			if nd.X != old.X || nd.Y != old.Y {
				switch nd.Kind {
				case NodePCU:
					rep.MovedPCUs++
				case NodePMU:
					rep.MovedPMUs++
				}
			}
		}
	} else {
		// Different expansion: count every unit as moved.
		for _, nd := range fresh.Netlist.Nodes {
			switch nd.Kind {
			case NodePCU:
				rep.MovedPCUs++
			case NodePMU:
				rep.MovedPMUs++
			}
		}
	}
	m.Virtual, m.Part, m.Netlist = fresh.Virtual, fresh.Part, fresh.Netlist
	m.Routes, m.Faults = fresh.Routes, plan
	m.Util = fresh.Util
	// Leaves/Mems keep their original pointers' keys (same *dhdl.Program),
	// but the fresh compile recomputed depths against the new placement.
	m.Leaves, m.Mems = fresh.Leaves, fresh.Mems
	return rep, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
