package compiler

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"plasticine/internal/stats"
)

// PassEntry records one compiler pass execution: what it was, how long it
// took on the host, a one-line summary, and structured metrics (sizes,
// deltas, histograms) keyed by metric name.
type PassEntry struct {
	Name   string // "validate", "allocate", "partition", ...
	WallNS int64  // host wall time spent in the pass
	Detail string // one-line human summary
	// Stats holds the pass's structured metrics. Histogram buckets use
	// "<metric>[<bucket>]" keys (e.g. "route_hops[3]").
	Stats map[string]int64 `json:",omitempty"`
	// Err is the pass's failure message (empty on success); the trace keeps
	// entries up to and including the failing pass.
	Err string `json:",omitempty"`
}

// PassTrace records the compile pipeline's per-pass statistics: wall time,
// input/output sizes, allocation and utilization deltas, placement
// displacement and route-length histograms. It is attached to the Mapping
// (and available even when compilation fails) so failures and slow compiles
// can be explained pass by pass.
type PassTrace struct {
	Program string
	Entries []*PassEntry
}

// begin starts timing a pass; the returned func finalises the entry. Safe on
// a nil trace (returns a no-op).
func (pt *PassTrace) begin(name string) func(detail string, st map[string]int64, err error) {
	if pt == nil {
		return func(string, map[string]int64, error) {}
	}
	t0 := time.Now()
	return func(detail string, st map[string]int64, err error) {
		e := &PassEntry{Name: name, WallNS: time.Since(t0).Nanoseconds(), Detail: detail, Stats: st}
		if err != nil {
			e.Err = err.Error()
		}
		pt.Entries = append(pt.Entries, e)
	}
}

// Add appends a pre-built entry (used by Repair to extend a mapping's trace
// after the initial compile). Safe on a nil trace.
func (pt *PassTrace) Add(e *PassEntry) {
	if pt == nil {
		return
	}
	pt.Entries = append(pt.Entries, e)
}

// TotalNS is the summed wall time of all recorded passes.
func (pt *PassTrace) TotalNS() int64 {
	if pt == nil {
		return 0
	}
	var n int64
	for _, e := range pt.Entries {
		n += e.WallNS
	}
	return n
}

// String renders the trace as a table: one row per pass with wall time,
// summary, and sorted metrics.
func (pt *PassTrace) String() string {
	if pt == nil || len(pt.Entries) == 0 {
		return "passtrace: empty\n"
	}
	t := stats.New(fmt.Sprintf("compile passes: %s (%.2f ms total)",
		pt.Program, float64(pt.TotalNS())/1e6), "Pass", "Wall", "Detail")
	for _, e := range pt.Entries {
		detail := e.Detail
		if e.Err != "" {
			detail = "FAILED: " + e.Err
		}
		t.Add(e.Name, fmtNS(e.WallNS), detail)
	}
	var b strings.Builder
	b.WriteString(t.String())
	for _, e := range pt.Entries {
		if len(e.Stats) == 0 {
			continue
		}
		keys := make([]string, 0, len(e.Stats))
		for k := range e.Stats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "  %s:", e.Name)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, e.Stats[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

// histInto records value v into bucketed keys "<metric>[<b>]" in st, with an
// overflow bucket "<metric>[>=<cap>]" so histograms stay bounded.
func histInto(st map[string]int64, metric string, v, cap int) {
	if v >= cap {
		st[fmt.Sprintf("%s[>=%d]", metric, cap)]++
		return
	}
	st[fmt.Sprintf("%s[%d]", metric, v)]++
}

// placeStats summarises a finished placement: the wirelength estimate (sum
// of Manhattan distances over unique netlist edges), the worst single edge,
// and an edge-length histogram — the "displacement" cost the greedy placer
// left on the table.
func placeStats(nl *Netlist) map[string]int64 {
	st := map[string]int64{"nodes": int64(len(nl.Nodes))}
	var wire, worst int64
	edges := 0
	for i, nd := range nl.Nodes {
		for _, j := range nd.Edges {
			if j < i {
				continue
			}
			d := int64(RouteHops(nd, nl.Nodes[j]))
			wire += d
			if d > worst {
				worst = d
			}
			edges++
			histInto(st, "edge_hops", int(d), 8)
		}
	}
	st["edges"] = int64(edges)
	st["wirelength"] = wire
	st["worst_edge_hops"] = worst
	return st
}

// routeStats summarises a finished routing: route-length histogram, link
// congestion, and average hops (scaled x100 to stay integral).
func routeStats(rt *RouteTable) map[string]int64 {
	st := map[string]int64{
		"routes":        int64(len(rt.Routes)),
		"links_used":    int64(len(rt.LinkUse)),
		"max_link_use":  int64(rt.MaxLinkUse()),
		"avg_hops_x100": int64(rt.AvgHops() * 100),
	}
	for _, r := range rt.Routes {
		histInto(st, "route_hops", len(r.Hops)-1, 8)
	}
	return st
}
