package compiler

import (
	"fmt"
	"strconv"
	"strings"

	"plasticine/internal/pattern"
)

// This file interprets generated stage programs (PCUConfig.Stages) the way
// the hardware would: one op per stage, operands from pipeline registers,
// input buses, counters and configuration constants. It exists to validate
// that the emitted configuration is a faithful, executable artefact — the
// tests run leaf bodies both through the DHDL interpreter and through their
// compiled stage programs and require identical results.

// LaneEnv supplies one lane's inputs to a stage program.
type LaneEnv struct {
	// Vec[i] is the value on vector input bus i for this lane.
	Vec []pattern.Value
	// Scal[i] is scalar input i (broadcast to all lanes).
	Scal []pattern.Value
	// Ctr[l] is the counter value at level l for this lane.
	Ctr []int32
	// Cross[name] provides values arriving from earlier partitions
	// (operand names of the form "xt<N>").
	Cross map[string]pattern.Value
}

func parseConst(s string) (pattern.Value, error) {
	body := strings.TrimPrefix(s, "#")
	if body == "" {
		return pattern.Value{}, fmt.Errorf("compiler: empty constant")
	}
	tag, rest := body[0], body[1:]
	switch tag {
	case 'b':
		if rest == "true" || rest == "false" {
			return pattern.VB(rest == "true"), nil
		}
	case 'i':
		if i, err := strconv.ParseInt(rest, 10, 32); err == nil {
			return pattern.VI(int32(i)), nil
		}
	case 'f':
		if f, err := strconv.ParseFloat(rest, 32); err == nil {
			return pattern.VF(float32(f)), nil
		}
	}
	return pattern.Value{}, fmt.Errorf("compiler: bad constant %q", s)
}

var unaryOps = map[string]pattern.Op{
	"not": pattern.Not, "neg": pattern.Neg, "abs": pattern.Abs,
	"exp": pattern.Exp, "log": pattern.Log, "sqrt": pattern.Sqrt, "rcp": pattern.Rcp,
}

var binaryOps = map[string]pattern.Op{
	"add": pattern.Add, "sub": pattern.Sub, "mul": pattern.Mul, "div": pattern.Div,
	"mod": pattern.Mod, "min": pattern.Min, "max": pattern.Max,
	"lt": pattern.Lt, "le": pattern.Le, "gt": pattern.Gt, "ge": pattern.Ge,
	"eq": pattern.Eq, "ne": pattern.Ne, "and": pattern.And, "or": pattern.Or,
}

// EvalStageProgram executes a stage program for a full vector of lanes and
// returns each lane's final register file plus the per-lane value of every
// reduce stage (already folded across lanes, broadcast back).
func EvalStageProgram(stages []StageConfig, lanes []LaneEnv) (out []map[string]pattern.Value, err error) {
	// Op semantics delegate to the pattern package; a malformed stage
	// program (e.g. a boolean fed to an arithmetic op) surfaces as an
	// error wrapping pattern.ErrEval instead of a panic.
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*pattern.EvalError); ok {
				out, err = nil, fmt.Errorf("compiler: stage program: %w", pe)
				return
			}
			panic(r)
		}
	}()
	regs := make([]map[string]pattern.Value, len(lanes))
	for i := range regs {
		regs[i] = map[string]pattern.Value{}
	}
	read := func(lane int, src string) (pattern.Value, error) {
		env := lanes[lane]
		switch {
		case strings.HasPrefix(src, "#"):
			return parseConst(src)
		case strings.HasPrefix(src, "r"):
			v, ok := regs[lane][src]
			if !ok {
				return pattern.Value{}, fmt.Errorf("compiler: read of unwritten register %s", src)
			}
			return v, nil
		case strings.HasPrefix(src, "v"):
			id, err := strconv.Atoi(src[1:])
			if err != nil || id >= len(env.Vec) {
				return pattern.Value{}, fmt.Errorf("compiler: bad vector operand %s", src)
			}
			return env.Vec[id], nil
		case strings.HasPrefix(src, "s"):
			id, err := strconv.Atoi(src[1:])
			if err != nil || id >= len(env.Scal) {
				return pattern.Value{}, fmt.Errorf("compiler: bad scalar operand %s", src)
			}
			return env.Scal[id], nil
		case strings.HasPrefix(src, "i"):
			l, err := strconv.Atoi(src[1:])
			if err != nil || l >= len(env.Ctr) {
				return pattern.Value{}, fmt.Errorf("compiler: bad counter operand %s", src)
			}
			return pattern.VI(env.Ctr[l]), nil
		case strings.HasPrefix(src, "x"):
			v, ok := env.Cross[src]
			if !ok {
				return pattern.Value{}, fmt.Errorf("compiler: missing cross-partition value %s", src)
			}
			return v, nil
		}
		return pattern.Value{}, fmt.Errorf("compiler: bad operand %s", src)
	}

	for _, st := range stages {
		switch {
		case strings.HasPrefix(st.Op, "reduce_"):
			opName := strings.TrimPrefix(st.Op, "reduce_")
			op, ok := binaryOps[opName]
			if !ok {
				return nil, fmt.Errorf("compiler: bad reduce op %q", st.Op)
			}
			// Optional second source is a lane-validity predicate.
			var acc pattern.Value
			first := true
			for lane := range lanes {
				v, err := read(lane, st.Srcs[0])
				if err != nil {
					return nil, err
				}
				if len(st.Srcs) > 1 {
					cond, err := read(lane, st.Srcs[1])
					if err != nil {
						return nil, err
					}
					if !cond.B {
						continue
					}
				}
				if first {
					acc, first = v, false
				} else {
					acc = pattern.EvalOp(op, acc, v)
				}
			}
			if first {
				// No lane contributed; use the type's zero.
				acc = pattern.VF(0)
			}
			for lane := range lanes {
				regs[lane][st.Dst] = acc
			}
		case st.Op == "mux":
			for lane := range lanes {
				c, err := read(lane, st.Srcs[0])
				if err != nil {
					return nil, err
				}
				pick := st.Srcs[2]
				if c.B {
					pick = st.Srcs[1]
				}
				v, err := read(lane, pick)
				if err != nil {
					return nil, err
				}
				regs[lane][st.Dst] = v
			}
		case st.Op == "i2f":
			for lane := range lanes {
				v, err := read(lane, st.Srcs[0])
				if err != nil {
					return nil, err
				}
				regs[lane][st.Dst] = pattern.VF(float32(v.I))
			}
		case st.Op == "f2i":
			for lane := range lanes {
				v, err := read(lane, st.Srcs[0])
				if err != nil {
					return nil, err
				}
				regs[lane][st.Dst] = pattern.VI(int32(v.F))
			}
		default:
			if op, ok := unaryOps[st.Op]; ok {
				for lane := range lanes {
					v, err := read(lane, st.Srcs[0])
					if err != nil {
						return nil, err
					}
					regs[lane][st.Dst] = pattern.Eval(&pattern.Un{Op: op, X: litOf(v)}, nil)
				}
				continue
			}
			op, ok := binaryOps[st.Op]
			if !ok {
				return nil, fmt.Errorf("compiler: unknown stage op %q", st.Op)
			}
			for lane := range lanes {
				x, err := read(lane, st.Srcs[0])
				if err != nil {
					return nil, err
				}
				y, err := read(lane, st.Srcs[1])
				if err != nil {
					return nil, err
				}
				regs[lane][st.Dst] = pattern.EvalOp(op, x, y)
			}
		}
	}
	return regs, nil
}

func litOf(v pattern.Value) pattern.Expr {
	switch v.T {
	case pattern.F32:
		return pattern.F(v.F)
	case pattern.I32:
		return pattern.I(v.I)
	}
	return pattern.B(v.B)
}
