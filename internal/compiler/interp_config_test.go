package compiler

import (
	"math"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/pattern"
)

// TestStageProgramMatchesSemantics executes the generated 'mac' stage
// program (mul + cross-lane reduce) directly and compares against the
// arithmetic it was compiled from.
func TestStageProgramMatchesSemantics(t *testing.T) {
	bs := GenerateBitstream(dotMapping(t))
	var mac *PCUConfig
	for i := range bs.PCUs {
		if bs.PCUs[i].Leaf == "mac" {
			mac = &bs.PCUs[i]
		}
	}
	if mac == nil {
		t.Fatal("mac config missing")
	}
	lanes := make([]LaneEnv, 16)
	var want float64
	for l := range lanes {
		a := float32(l) * 0.5
		b := float32(16 - l)
		lanes[l] = LaneEnv{Vec: []pattern.Value{pattern.VF(a), pattern.VF(b)}}
		want += float64(a) * float64(b)
	}
	regs, err := EvalStageProgram(mac.Stages, lanes)
	if err != nil {
		t.Fatal(err)
	}
	// The reduce broadcasts the folded value into its dst on every lane.
	dst := mac.Stages[len(mac.Stages)-1].Dst
	got := float64(regs[0][dst].F)
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("stage program computed %g, want %g", got, want)
	}
	for l := 1; l < 16; l++ {
		if regs[l][dst] != regs[0][dst] {
			t.Errorf("reduce result not broadcast to lane %d", l)
		}
	}
}

// TestStageProgramDeepPipeline cross-checks a multi-op pipeline (no
// reduction) lane by lane.
func TestStageProgramDeepPipeline(t *testing.T) {
	u := &VirtualPCU{Name: "poly", Lanes: 4, Unroll: 1}
	u.VecIns = []VecInput{{}}
	x := Operand{Kind: VecIn, ID: 0}
	// y = (x*x + 2)*x - 1  -> mul, add, mul, sub
	mul1 := &VOp{ID: 0, Kind: ALUOp, ALU: pattern.Mul, Args: []Operand{x, x}}
	add := &VOp{ID: 1, Kind: ALUOp, ALU: pattern.Add, Args: []Operand{{Kind: OpResult, ID: 0}, {Kind: ConstOperand, Const: pattern.VF(2)}}}
	mul2 := &VOp{ID: 2, Kind: ALUOp, ALU: pattern.Mul, Args: []Operand{{Kind: OpResult, ID: 1}, x}}
	sub := &VOp{ID: 3, Kind: ALUOp, ALU: pattern.Sub, Args: []Operand{{Kind: OpResult, ID: 2}, {Kind: ConstOperand, Const: pattern.VF(1)}}}
	u.Ops = []*VOp{mul1, add, mul2, sub}
	u.Outs = []VOut{{Kind: OutVecSRAM, Src: Operand{Kind: OpResult, ID: 3}}}

	parts, err := PartitionPCU(u, arch.Default().PCU)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Fatalf("got %d partitions", len(parts))
	}
	stages, _ := pcuStageProgram(u, parts[0])
	lanes := []LaneEnv{
		{Vec: []pattern.Value{pattern.VF(0)}},
		{Vec: []pattern.Value{pattern.VF(1)}},
		{Vec: []pattern.Value{pattern.VF(2)}},
		{Vec: []pattern.Value{pattern.VF(-3)}},
	}
	regs, err := EvalStageProgram(stages, lanes)
	if err != nil {
		t.Fatal(err)
	}
	dst := stages[len(stages)-1].Dst
	for l, env := range lanes {
		xv := env.Vec[0].F
		want := (xv*xv+2)*xv - 1
		if got := regs[l][dst].F; got != want {
			t.Errorf("lane %d: got %g, want %g", l, got, want)
		}
	}
}

func TestStageProgramErrors(t *testing.T) {
	cases := []StageConfig{
		{Op: "bogus", Srcs: []string{"v0", "v0"}, Dst: "r0"},
		{Op: "add", Srcs: []string{"r9", "v0"}, Dst: "r0"},  // unwritten reg
		{Op: "add", Srcs: []string{"v7", "v0"}, Dst: "r0"},  // missing bus
		{Op: "add", Srcs: []string{"#q1", "v0"}, Dst: "r0"}, // bad const
		{Op: "add", Srcs: []string{"xt3", "v0"}, Dst: "r0"}, // missing crossing
	}
	for i, st := range cases {
		lanes := []LaneEnv{{Vec: []pattern.Value{pattern.VF(1)}}}
		if _, err := EvalStageProgram([]StageConfig{st}, lanes); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseConst(t *testing.T) {
	cases := []struct {
		in   string
		want pattern.Value
	}{
		{"#i3", pattern.VI(3)},
		{"#i-7", pattern.VI(-7)},
		{"#f1.5", pattern.VF(1.5)},
		{"#btrue", pattern.VB(true)},
		{"#f2e3", pattern.VF(2000)},
	}
	for _, c := range cases {
		got, err := parseConst(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseConst(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
	}
}
