package compiler

import (
	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
)

// Affine is a linear form over counter levels: Const + sum(Coeff[l] * i_l).
// Address expressions that fit this form get static banking; anything else
// is a data-dependent (random) access.
type Affine struct {
	Coeff map[int]int64
	Const int64
}

// AnalyzeAffine decomposes an address expression into an affine form over
// counter levels. The second result is false for non-affine addresses
// (data-dependent indices, products of counters, and so on).
func AnalyzeAffine(e dhdl.Expr) (Affine, bool) {
	a, ok := affine(e)
	if !ok {
		return Affine{}, false
	}
	if a.Coeff == nil {
		a.Coeff = map[int]int64{}
	}
	return a, true
}

func affine(e dhdl.Expr) (Affine, bool) {
	switch n := e.(type) {
	case *dhdl.Lit:
		// Only integer literals participate in addressing.
		if n.V.T != pattern.I32 {
			return Affine{}, false
		}
		return Affine{Const: int64(n.V.I)}, true
	case *dhdl.Ctr:
		return Affine{Coeff: map[int]int64{n.Level: 1}}, true
	case *dhdl.Bin:
		x, okX := affine(n.X)
		y, okY := affine(n.Y)
		switch n.Op {
		case pattern.Add:
			if okX && okY {
				return addAffine(x, y, 1), true
			}
		case pattern.Sub:
			if okX && okY {
				return addAffine(x, y, -1), true
			}
		case pattern.Mul:
			// One side must be a pure constant.
			if okX && okY {
				if len(x.Coeff) == 0 {
					return scaleAffine(y, x.Const), true
				}
				if len(y.Coeff) == 0 {
					return scaleAffine(x, y.Const), true
				}
			}
		}
		return Affine{}, false
	}
	return Affine{}, false
}

func addAffine(x, y Affine, sign int64) Affine {
	out := Affine{Coeff: map[int]int64{}, Const: x.Const + sign*y.Const}
	for l, c := range x.Coeff {
		out.Coeff[l] += c
	}
	for l, c := range y.Coeff {
		out.Coeff[l] += sign * c
	}
	for l, c := range out.Coeff {
		if c == 0 {
			delete(out.Coeff, l)
		}
	}
	return out
}

func scaleAffine(x Affine, k int64) Affine {
	out := Affine{Coeff: map[int]int64{}, Const: x.Const * k}
	for l, c := range x.Coeff {
		if c*k != 0 {
			out.Coeff[l] = c * k
		}
	}
	return out
}

// LaneStride returns the address stride across SIMD lanes (the coefficient
// of the given innermost counter level).
func (a Affine) LaneStride(laneLevel int) int64 { return a.Coeff[laneLevel] }

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ConflictFactor returns how many cycles a banked SRAM needs to serve one
// vector of lanes accessing with this stride: 1 when conflict-free
// (consecutive or broadcast), banks/gcd-limited otherwise
// (e.g. stride 2 over 16 banks touches only 8 banks, so two lanes collide
// per bank and the access takes 2 cycles).
func (a Affine) ConflictFactor(laneLevel, banks int) int {
	s := a.LaneStride(laneLevel)
	if s == 0 {
		return 1 // broadcast: every lane reads the same word
	}
	g := gcd(s, int64(banks))
	return int(g)
}

// LaneStride computes how an address varies across SIMD lanes: the
// coefficient of the lane-level counter, treating lane-invariant subtrees
// (even data-dependent ones, like a per-point cluster id) as constants.
// ok is false when the address depends on the lane in a non-affine way —
// a per-lane gather/scatter.
func LaneStride(e dhdl.Expr, laneLevel int) (stride int64, ok bool) {
	if e == nil {
		return 0, true
	}
	if !usesLevel(e, laneLevel) {
		return 0, true
	}
	switch n := e.(type) {
	case *dhdl.Ctr:
		if n.Level == laneLevel {
			return 1, true
		}
		return 0, true
	case *dhdl.Bin:
		switch n.Op {
		case pattern.Add, pattern.Sub:
			x, okX := LaneStride(n.X, laneLevel)
			y, okY := LaneStride(n.Y, laneLevel)
			if !okX || !okY {
				return 0, false
			}
			if n.Op == pattern.Sub {
				y = -y
			}
			return x + y, true
		case pattern.Mul:
			// stride scales only by literal constants.
			if k, isConst := litInt(n.X); isConst {
				s, sok := LaneStride(n.Y, laneLevel)
				return s * k, sok
			}
			if k, isConst := litInt(n.Y); isConst {
				s, sok := LaneStride(n.X, laneLevel)
				return s * k, sok
			}
		}
	}
	return 0, false
}

func litInt(e dhdl.Expr) (int64, bool) {
	if l, isLit := e.(*dhdl.Lit); isLit && l.V.T == pattern.I32 {
		return int64(l.V.I), true
	}
	return 0, false
}

func usesLevel(e dhdl.Expr, level int) bool {
	found := false
	dhdl.Walk(e, func(x dhdl.Expr) {
		if c, isCtr := x.(*dhdl.Ctr); isCtr && c.Level == level {
			found = true
		}
	})
	return found
}

// StrideConflictFactor is the cycles a banked scratchpad needs to serve one
// vector whose addresses step by stride across lanes: gcd(stride, banks)
// lanes collide per bank. Stride 0 is a broadcast (one read feeds every
// lane); negative strides behave like their magnitude.
func StrideConflictFactor(stride int64, banks int) int {
	if stride == 0 {
		return 1
	}
	return int(gcd(stride, int64(banks)))
}

// randomWriteFactor models sequentialised random vector writes: the write
// sequencer coalesces same-burst lanes, sustaining ~4 distinct random
// addresses per cycle (Section 2.2: "random write commands must be
// sequentialized and coalesced").
const randomWriteFactor = 4

// BankingFor picks the scratchpad banking mode an access pattern needs:
// strided for lane-affine accesses, duplication for per-lane random reads
// (Section 3.2).
func BankingFor(addr dhdl.Expr, laneLevel int) dhdl.BankingMode {
	if _, ok := LaneStride(addr, laneLevel); ok {
		return dhdl.Strided
	}
	return dhdl.Duplication
}
