package compiler

import (
	"errors"
	"fmt"
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/fault"
)

// compileFaulted compiles the shared dot-product program under a plan.
func compileFaulted(t *testing.T, plan *fault.Plan) *Mapping {
	t.Helper()
	m, err := CompileWithFaults(buildDotProgram(1024, 256, 16), arch.Default(), plan)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPlaceWithFaultsAvoidsDisabledTiles(t *testing.T) {
	params := arch.Default()
	plan, err := fault.NewPlan(fault.Spec{Seed: 3, PCUs: 20, PMUs: 20, Switches: 4}, params)
	if err != nil {
		t.Fatal(err)
	}
	m := compileFaulted(t, plan)
	if m.Faults != plan {
		t.Error("mapping does not record the fault plan it was compiled under")
	}
	for _, nd := range m.Netlist.Nodes {
		switch nd.Kind {
		case NodePCU:
			if plan.PCUDisabled(nd.X, nd.Y) {
				t.Errorf("PCU %q placed on disabled tile (%d,%d)", nd.Name, nd.X, nd.Y)
			}
		case NodePMU:
			if plan.PMUDisabled(nd.X, nd.Y) {
				t.Errorf("PMU %q placed on disabled tile (%d,%d)", nd.Name, nd.X, nd.Y)
			}
		}
	}
}

func TestCompileInsufficientHealthy(t *testing.T) {
	params := arch.Default()
	plan, err := fault.NewPlan(fault.Spec{Seed: 1, PCUs: params.NumPCUs()}, params)
	if err != nil {
		t.Fatal(err)
	}
	_, err = CompileWithFaults(buildDotProgram(1024, 256, 16), params, plan)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
	var ie *InsufficientError
	if !errors.As(err, &ie) {
		t.Fatalf("error %T is not *InsufficientError", err)
	}
	if ie.Resource != "PCU" || ie.Have != 0 || ie.Disabled != params.NumPCUs() {
		t.Errorf("shortfall misreported: %+v", ie)
	}
}

func TestRouteDetoursAvoidDisabledSwitches(t *testing.T) {
	params := arch.Default()
	plan, err := fault.NewPlan(fault.Spec{Seed: 7, Switches: 10}, params)
	if err != nil {
		t.Fatal(err)
	}
	m := compileFaulted(t, plan)
	for _, r := range m.Routes.Routes {
		// Interior hops must avoid dead switches; endpoints are the units'
		// own local switch ports and always usable.
		for h := 1; h < len(r.Hops)-1; h++ {
			if plan.SwitchDisabled(r.Hops[h][0], r.Hops[h][1]) {
				t.Errorf("route %d-%d crosses disabled switch (%d,%d)",
					r.From, r.To, r.Hops[h][0], r.Hops[h][1])
			}
		}
	}
}

func TestNoRouteAcrossSwitchWall(t *testing.T) {
	params := arch.Default()
	// A dead column of switches spanning the full chip height cuts the
	// fabric in two; no detour exists from one side to the other.
	var wall []fault.Coord
	for y := 0; y < params.Chip.Rows; y++ {
		wall = append(wall, fault.Coord{X: 5, Y: y})
	}
	plan := fault.ManualPlan(nil, nil, wall, nil)
	if _, ok := detourRoute(0, 0, 10, 0, params, plan); ok {
		t.Fatal("detour found through a full-height switch wall")
	}
	nl := &Netlist{Nodes: []*Node{
		{Kind: NodePCU, Name: "left", X: 0, Y: 0, Edges: []int{1}},
		{Kind: NodePCU, Name: "right", X: 10, Y: 0, Edges: []int{0}},
	}}
	_, err := RouteAllWithFaults(nl, params, plan)
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("want ErrNoRoute, got %v", err)
	}
	var re *NoRouteError
	if !errors.As(err, &re) || re.From != "left" || re.To != "right" {
		t.Errorf("no-route diagnostic misreported: %v", err)
	}
}

// placementKey serialises every placed coordinate and route hop so runs can
// be compared byte for byte.
func placementKey(m *Mapping) string {
	s := ""
	for _, nd := range m.Netlist.Nodes {
		s += fmt.Sprintf("%s@%d,%d;", nd.Name, nd.X, nd.Y)
	}
	for _, r := range m.Routes.Routes {
		s += fmt.Sprintf("%d-%d:%v;", r.From, r.To, r.Hops)
	}
	return s
}

func TestCompileFaultedDeterministic(t *testing.T) {
	params := arch.Default()
	spec := fault.Spec{Seed: 11, PCUs: 8, PMUs: 8, Switches: 6}
	run := func() string {
		plan, err := fault.NewPlan(spec, params)
		if err != nil {
			t.Fatal(err)
		}
		return placementKey(compileFaulted(t, plan))
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same fault seed produced different mappings:\n%s\n%s", a, b)
	}
}

func TestZeroFaultPlanReproducesPristineCompile(t *testing.T) {
	params := arch.Default()
	zero, err := fault.NewPlan(fault.Spec{Seed: 99}, params)
	if err != nil {
		t.Fatal(err)
	}
	prog := buildDotProgram(1024, 256, 16)
	pristine, err := Compile(prog, params)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := CompileWithFaults(prog, params, zero)
	if err != nil {
		t.Fatal(err)
	}
	if placementKey(pristine) != placementKey(faulted) {
		t.Error("zero-fault plan changed placement or routing vs pristine Compile")
	}
	for leaf, lm := range pristine.Leaves {
		flm := faulted.Leaves[leaf]
		if flm == nil || *flm != *lm {
			t.Errorf("leaf %q timing differs under zero-fault plan: %+v vs %+v",
				leaf.Name, flm, lm)
		}
	}
}
