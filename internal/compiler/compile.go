package compiler

import (
	"context"
	"fmt"
	"strings"

	"plasticine/internal/arch"
	"plasticine/internal/dhdl"
	"plasticine/internal/fault"
)

// LeafMap is the simulator-facing mapping of one leaf controller.
type LeafMap struct {
	// PCUs is the number of chained physical PCUs (1 for transfers' AGs).
	PCUs int
	// Lanes is the SIMD width of the leaf.
	Lanes int
	// Unroll is the outer-parallelization duplication factor.
	Unroll int
	// PipelineDepth is the total latency in cycles from operand arrival to
	// result: PMU read latency + compute stages + inter-unit hops.
	PipelineDepth int
	// II is the initiation interval in cycles per vector firing.
	II int
}

// MemMap is the mapping of one SRAM.
type MemMap struct {
	PMUs  int // physical PMUs holding (pieces/copies of) the buffer
	NBuf  int
	Banks int
}

// Utilization summarises fabric occupancy, matching Table 7's columns.
type Utilization struct {
	PCUs, PMUs, AGs int
	PCUFrac         float64 // fraction of chip PCUs configured
	PMUFrac         float64
	AGFrac          float64
	FUFrac          float64 // fraction of FU slots in used PCUs doing work
	RegFrac         float64 // fraction of pipeline registers holding live values
}

// Mapping is the compiled form of a program: the "bitstream"-level
// description the simulator interprets plus resource accounting.
type Mapping struct {
	Prog    *dhdl.Program
	Params  arch.Params
	Virtual *Virtual
	Part    *Partitioned
	Netlist *Netlist

	// Routes is the switch-fabric routing of every netlist edge; under a
	// fault plan, affected routes detour around disabled switches.
	Routes *RouteTable
	// Faults is the fault plan the program was mapped under (nil = pristine).
	Faults *fault.Plan

	Leaves map[*dhdl.Controller]*LeafMap
	Mems   map[*dhdl.SRAM]*MemMap
	Util   Utilization

	// Passes is the per-pass instrumentation of the compile that produced
	// this mapping; Repair appends its own entries.
	Passes *PassTrace

	// LastRepair describes the most recent incremental repair applied to
	// this mapping (nil if it has never been repaired). Set by Repair, and
	// therefore by CompileOpts when Options.Reuse routes through it.
	LastRepair *RepairReport
}

// pmuReadLatency is the cycles from read-address issue to data on the
// vector output: the PMU address datapath plus SRAM access.
func pmuReadLatency(p arch.Params) int { return p.PMU.Stages + 2 }

// Options bundles everything the compile pipeline needs besides the
// program itself — the single configuration surface behind CompileOpts.
type Options struct {
	// Params configures the target fabric.
	Params arch.Params
	// Faults is the fault plan to compile around: the placer skips disabled
	// tiles and routes detour disabled switches. Nil means a pristine
	// fabric.
	Faults *fault.Plan
	// Reuse, when non-nil, repairs the given already-compiled mapping
	// incrementally against Faults instead of compiling from scratch — the
	// recovery controller's path. The returned mapping is Reuse itself,
	// mutated in place, with Mapping.LastRepair describing what moved.
	// Params is ignored (the mapping keeps its own).
	Reuse *Mapping
}

// CompileOpts is the canonical compile entry point: it runs the full flow —
// allocate virtual units, partition them into physical units, place and
// route, and derive per-leaf timing for the simulator — under one Options
// struct, honouring ctx between passes so a parallel sweep can cancel
// in-flight compiles. It fails if the program cannot be expressed on the
// fabric (constraint violations) or does not fit (too few units).
//
// With Options.Reuse set it instead repairs the existing mapping around
// Options.Faults (see Repair).
func CompileOpts(ctx context.Context, p *dhdl.Program, opts Options) (*Mapping, error) {
	if opts.Reuse != nil {
		if _, err := Repair(opts.Reuse, opts.Faults); err != nil {
			return nil, err
		}
		return opts.Reuse, nil
	}
	m, _, err := compileTraced(ctx, p, opts)
	return m, err
}

// Compile maps a program onto a pristine fabric under params.
//
// Deprecated: thin wrapper kept for existing callers; use CompileOpts.
func Compile(p *dhdl.Program, params arch.Params) (*Mapping, error) {
	return CompileWithFaults(p, params, nil)
}

// CompileWithFaults is Compile under a fault plan. A nil (or fault-free)
// plan reproduces Compile byte-identically.
//
// Deprecated: thin wrapper kept for existing callers; use CompileOpts.
func CompileWithFaults(p *dhdl.Program, params arch.Params, plan *fault.Plan) (*Mapping, error) {
	return CompileOpts(context.Background(), p, Options{Params: params, Faults: plan})
}

// CompileTraced is CompileWithFaults that also returns the pass trace. On
// failure the mapping is nil but the trace still covers every pass up to and
// including the one that failed, so callers can explain what went wrong.
//
// Deprecated: thin wrapper kept for existing callers; use CompileOpts (the
// trace is always available as Mapping.Passes).
func CompileTraced(p *dhdl.Program, params arch.Params, plan *fault.Plan) (*Mapping, *PassTrace, error) {
	return compileTraced(context.Background(), p, Options{Params: params, Faults: plan})
}

// compileTraced is the pipeline body. It checks ctx at every pass boundary:
// a canceled compile returns ctx's error wrapped with the program name, and
// the trace still covers every pass that ran.
func compileTraced(ctx context.Context, p *dhdl.Program, opts Options) (*Mapping, *PassTrace, error) {
	params, plan := opts.Params, opts.Faults
	pt := &PassTrace{Program: p.Name}
	if err := ctx.Err(); err != nil {
		return nil, pt, fmt.Errorf("compiler: %s: %w", p.Name, err)
	}
	end := pt.begin("validate")
	err := params.Validate()
	end(params.String(), nil, err)
	if err != nil {
		return nil, pt, err
	}

	end = pt.begin("allocate")
	v, err := Allocate(p)
	var allocDetail string
	var allocStats map[string]int64
	if err == nil {
		allocDetail = fmt.Sprintf("%d vPCUs, %d vPMUs, %d vAGs", len(v.PCUs), len(v.PMUs), len(v.AGs))
		allocStats = map[string]int64{
			"virtual_pcus": int64(len(v.PCUs)), "virtual_pmus": int64(len(v.PMUs)),
			"virtual_ags": int64(len(v.AGs)), "outer_ctrls": int64(v.OuterCtrls),
		}
	}
	end(allocDetail, allocStats, err)
	if err != nil {
		return nil, pt, err
	}

	if err := ctx.Err(); err != nil {
		return nil, pt, fmt.Errorf("compiler: %s: %w", p.Name, err)
	}
	end = pt.begin("partition")
	part, err := Partition(v, params)
	var partDetail string
	var partStats map[string]int64
	if err == nil {
		partDetail = fmt.Sprintf("%d PCUs, %d PMUs, %d AGs", part.TotalPCUs, part.TotalPMUs, part.TotalAGs)
		partStats = map[string]int64{
			"phys_pcus": int64(part.TotalPCUs), "phys_pmus": int64(part.TotalPMUs),
			"phys_ags": int64(part.TotalAGs), "used_fu_slots": part.UsedFUSlots,
		}
	}
	end(partDetail, partStats, err)
	if err != nil {
		return nil, pt, err
	}

	end = pt.begin("fit-check")
	healthyPCUs := params.NumPCUs() - plan.NumDisabledPCUs()
	healthyPMUs := params.NumPMUs() - plan.NumDisabledPMUs()
	fitStats := map[string]int64{
		"need_pcus": int64(part.TotalPCUs), "have_pcus": int64(healthyPCUs),
		"need_pmus": int64(part.TotalPMUs), "have_pmus": int64(healthyPMUs),
		"need_ags": int64(part.TotalAGs), "have_ags": int64(params.NumAGs()),
	}
	var fitErr error
	switch {
	case part.TotalPCUs > healthyPCUs:
		fitErr = &InsufficientError{Resource: "PCU", Need: part.TotalPCUs,
			Have: healthyPCUs, Disabled: plan.NumDisabledPCUs()}
	case part.TotalPMUs > healthyPMUs:
		fitErr = &InsufficientError{Resource: "PMU", Need: part.TotalPMUs,
			Have: healthyPMUs, Disabled: plan.NumDisabledPMUs()}
	case part.TotalAGs > params.NumAGs():
		fitErr = &InsufficientError{Resource: "AG", Need: part.TotalAGs, Have: params.NumAGs()}
	}
	end(fmt.Sprintf("PCU %d/%d, PMU %d/%d, AG %d/%d", part.TotalPCUs, healthyPCUs,
		part.TotalPMUs, healthyPMUs, part.TotalAGs, params.NumAGs()), fitStats, fitErr)
	if fitErr != nil {
		return nil, pt, fitErr
	}

	end = pt.begin("netlist")
	nl := BuildNetlist(part)
	edges := 0
	for i, nd := range nl.Nodes {
		for _, j := range nd.Edges {
			if j > i {
				edges++
			}
		}
	}
	end(fmt.Sprintf("%d nodes, %d edges", len(nl.Nodes), edges),
		map[string]int64{"nodes": int64(len(nl.Nodes)), "edges": int64(edges)}, nil)

	if err := ctx.Err(); err != nil {
		return nil, pt, fmt.Errorf("compiler: %s: %w", p.Name, err)
	}
	end = pt.begin("place")
	err = PlaceWithFaults(nl, params, plan)
	var plStats map[string]int64
	var plDetail string
	if err == nil {
		plStats = placeStats(nl)
		plDetail = fmt.Sprintf("wirelength %d, worst edge %d hops",
			plStats["wirelength"], plStats["worst_edge_hops"])
	}
	end(plDetail, plStats, err)
	if err != nil {
		return nil, pt, err
	}

	if err := ctx.Err(); err != nil {
		return nil, pt, fmt.Errorf("compiler: %s: %w", p.Name, err)
	}
	end = pt.begin("route")
	routes, err := RouteAllWithFaults(nl, params, plan)
	var rtStats map[string]int64
	var rtDetail string
	if err == nil {
		rtStats = routeStats(routes)
		rtDetail = fmt.Sprintf("%d routes, %.2f avg hops, max link use %d",
			len(routes.Routes), routes.AvgHops(), routes.MaxLinkUse())
	}
	end(rtDetail, rtStats, err)
	if err != nil {
		return nil, pt, err
	}
	endTiming := pt.begin("timing")
	// Hop distance between two placed nodes: Manhattan on a pristine
	// fabric; the routed (detoured) path length under switch faults.
	edgeHops := map[[2]int]int{}
	if plan.HasSwitchFaults() {
		for _, r := range routes.Routes {
			a, b := r.From, r.To
			if a > b {
				a, b = b, a
			}
			edgeHops[[2]int{a, b}] = len(r.Hops) - 1
		}
	}
	hopLen := func(ai, bi int) int {
		if plan.HasSwitchFaults() {
			a, b := ai, bi
			if a > b {
				a, b = b, a
			}
			if h, ok := edgeHops[[2]int{a, b}]; ok {
				return h
			}
		}
		return RouteHops(nl.Nodes[ai], nl.Nodes[bi])
	}

	m := &Mapping{
		Prog:    p,
		Params:  params,
		Virtual: v,
		Part:    part,
		Netlist: nl,
		Routes:  routes,
		Faults:  plan,
		Leaves:  map[*dhdl.Controller]*LeafMap{},
		Mems:    map[*dhdl.SRAM]*MemMap{},
	}
	for _, pc := range part.PCUs {
		chain := nl.LeafChain[pc.V.Leaf]
		depth := pmuReadLatency(params)
		stages := 0
		for _, part := range pc.Parts {
			stages += part.StagesUsed
		}
		depth += stages
		for i := 1; i < len(chain); i++ {
			depth += hopLen(chain[i-1], chain[i])
		}
		// Input route: longest hop from any source PMU to the first PCU
		// adds registered-switch latency ahead of the pipeline.
		if len(chain) > 0 {
			maxHop := 0
			for _, vi := range pc.V.VecIns {
				if vi.SRAM != nil {
					if mn, ok := nl.MemNode[vi.SRAM]; ok {
						if h := hopLen(chain[0], mn); h > maxHop {
							maxHop = h
						}
					}
				}
			}
			depth += maxHop
		}
		// Initiation interval: bank conflicts and sequentialised random
		// writes throttle the firing rate below one vector per cycle.
		ii := 1
		for _, ra := range pc.V.ReadAccess {
			if ra.Affine {
				if f := StrideConflictFactor(ra.Stride, params.PMU.Banks); f > ii {
					ii = f
				}
			}
			// Non-affine reads are served by duplication-mode banks at
			// full rate.
		}
		for _, wa := range pc.V.WriteAccess {
			f := randomWriteFactor
			if wa.Affine {
				f = StrideConflictFactor(wa.Stride, params.PMU.Banks)
			}
			if pc.V.Lanes == 1 {
				f = 1 // a single lane never conflicts with itself
			}
			if f > ii {
				ii = f
			}
		}
		m.Leaves[pc.V.Leaf] = &LeafMap{
			PCUs:          len(pc.Parts),
			Lanes:         pc.V.Lanes,
			Unroll:        pc.V.Unroll,
			PipelineDepth: depth,
			II:            ii,
		}
	}
	for _, ag := range v.AGs {
		m.Leaves[ag.Leaf] = &LeafMap{PCUs: 0, Lanes: 1, Unroll: ag.Unroll, PipelineDepth: 4, II: 1}
	}
	for _, pm := range part.PMUs {
		m.Mems[pm.V.Mem] = &MemMap{PMUs: pm.Units(), NBuf: pm.V.NBuf, Banks: params.PMU.Banks}
	}
	m.Util = computeUtil(part, params)
	maxDepth, maxII := 0, 0
	for _, lm := range m.Leaves {
		if lm.PipelineDepth > maxDepth {
			maxDepth = lm.PipelineDepth
		}
		if lm.II > maxII {
			maxII = lm.II
		}
	}
	endTiming(fmt.Sprintf("%d leaves, max depth %d, max II %d", len(m.Leaves), maxDepth, maxII),
		map[string]int64{
			"leaves": int64(len(m.Leaves)), "max_pipeline_depth": int64(maxDepth),
			"max_ii": int64(maxII), "util_fu_pct": int64(m.Util.FUFrac * 100),
			"util_pcu_pct": int64(m.Util.PCUFrac * 100), "util_pmu_pct": int64(m.Util.PMUFrac * 100),
		}, nil)
	m.Passes = pt
	return m, pt, nil
}

func computeUtil(part *Partitioned, params arch.Params) Utilization {
	u := Utilization{
		PCUs: part.TotalPCUs,
		PMUs: part.TotalPMUs,
		AGs:  part.TotalAGs,
	}
	u.PCUFrac = float64(part.TotalPCUs) / float64(params.NumPCUs())
	u.PMUFrac = float64(part.TotalPMUs) / float64(params.NumPMUs())
	u.AGFrac = float64(part.TotalAGs) / float64(params.NumAGs())
	if part.TotalPCUs > 0 {
		slotsPerPCU := int64(params.PCU.Lanes * params.PCU.Stages)
		u.FUFrac = float64(part.UsedFUSlots) / float64(int64(part.TotalPCUs)*slotsPerPCU)
		if u.FUFrac > 1 {
			u.FUFrac = 1
		}
	}
	// Register occupancy: live values vs available registers in used PCUs.
	var liveSum, regCap int64
	for _, pc := range part.PCUs {
		for _, ph := range pc.Parts {
			liveSum += int64(ph.MaxLive*ph.StagesUsed*params.PCU.Lanes) * int64(pc.V.Unroll)
			regCap += int64(params.PCU.Stages*params.PCU.Registers*params.PCU.Lanes) * int64(pc.V.Unroll)
		}
	}
	if regCap > 0 {
		u.RegFrac = float64(liveSum) / float64(regCap)
		if u.RegFrac > 1 {
			u.RegFrac = 1
		}
	}
	return u
}

// Summary renders a human-readable mapping report.
func (m *Mapping) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s on %s\n", m.Prog.Name, m.Params.String())
	fmt.Fprintf(&b, "  PCUs %d/%d (%.1f%%)  PMUs %d/%d (%.1f%%)  AGs %d/%d (%.1f%%)  FU %.1f%%\n",
		m.Util.PCUs, m.Params.NumPCUs(), 100*m.Util.PCUFrac,
		m.Util.PMUs, m.Params.NumPMUs(), 100*m.Util.PMUFrac,
		m.Util.AGs, m.Params.NumAGs(), 100*m.Util.AGFrac,
		100*m.Util.FUFrac)
	for _, pc := range m.Part.PCUs {
		lm := m.Leaves[pc.V.Leaf]
		fmt.Fprintf(&b, "  compute %-20s %d part(s) x%d unroll, %d lanes, depth %d  <- %s\n",
			pc.V.Name, len(pc.Parts), pc.V.Unroll, pc.V.Lanes, lm.PipelineDepth, pc.V.Origin)
	}
	for _, pm := range m.Part.PMUs {
		fmt.Fprintf(&b, "  memory  %-20s %d PMU(s), %d-buffered, %d support PCU(s)  <- %s\n",
			pm.V.Name, pm.Units(), pm.V.NBuf, pm.SupportPCUs, pm.V.Origin)
	}
	return b.String()
}
