package compiler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"plasticine/internal/arch"
	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
)

// randomUnit builds a random but well-formed virtual PCU: a DAG of ALU ops
// over a few vector/scalar inputs and counters, ending in one output.
func randomUnit(rng *rand.Rand, nOps int) *VirtualPCU {
	u := &VirtualPCU{Name: "rand", Lanes: 16, Unroll: 1}
	nVec := 1 + rng.Intn(3)
	nScal := rng.Intn(3)
	for i := 0; i < nVec; i++ {
		u.VecIns = append(u.VecIns, VecInput{SRAM: &dhdl.SRAM{Name: "m"}})
	}
	for i := 0; i < nScal; i++ {
		u.ScalIns = append(u.ScalIns, ScalInput{Reg: &dhdl.Reg{Name: "r"}})
	}
	operand := func(maxOp int) Operand {
		switch rng.Intn(5) {
		case 0:
			return Operand{Kind: VecIn, ID: rng.Intn(nVec)}
		case 1:
			if nScal > 0 {
				return Operand{Kind: ScalIn, ID: rng.Intn(nScal)}
			}
			return Operand{Kind: ConstOperand, Const: pattern.VF(1)}
		case 2:
			return Operand{Kind: CtrIdx, ID: 0}
		case 3:
			return Operand{Kind: ConstOperand, Const: pattern.VF(2)}
		default:
			if maxOp > 0 {
				return Operand{Kind: OpResult, ID: rng.Intn(maxOp)}
			}
			return Operand{Kind: VecIn, ID: rng.Intn(nVec)}
		}
	}
	for i := 0; i < nOps; i++ {
		op := &VOp{ID: i, Kind: ALUOp, ALU: pattern.Add,
			Args: []Operand{operand(i), operand(i)}}
		u.Ops = append(u.Ops, op)
	}
	u.Outs = []VOut{{Kind: OutVecSRAM, SRAM: &dhdl.SRAM{Name: "o"},
		Src: Operand{Kind: OpResult, ID: nOps - 1}}}
	return u
}

// TestPartitionInvariantsProperty checks, over random op DAGs, that every
// partition respects the architecture constraints, preserves all ops in
// order, and keeps dependencies forward (an op's arguments always live in
// the same or an earlier partition).
func TestPartitionInvariantsProperty(t *testing.T) {
	p := arch.Default().PCU
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 2
		u := randomUnit(rng, n)
		parts, err := PartitionPCU(u, p)
		if err != nil {
			// Random units are always feasible under the default box:
			// binary ops need at most 2 inputs.
			t.Logf("seed %d n %d: unexpected infeasibility: %v", seed, n, err)
			return false
		}
		// All ops present exactly once, in schedule order.
		seen := 0
		partOf := map[int]int{}
		for pi, ph := range parts {
			if ph.StagesUsed > p.Stages || ph.MaxLive > p.Registers ||
				ph.VecIns > p.VectorIns || ph.ScalIns > p.ScalarIns ||
				ph.VecOuts > p.VectorOuts || ph.ScalOuts > p.ScalarOuts {
				t.Logf("seed %d: partition %d violates constraints: %+v", seed, pi, ph)
				return false
			}
			for _, op := range ph.Ops {
				partOf[op.ID] = pi
				seen++
			}
		}
		if seen != n {
			t.Logf("seed %d: %d ops scheduled, want %d", seed, seen, n)
			return false
		}
		// Dependencies point backwards in the partition order.
		for _, ph := range parts {
			for _, op := range ph.Ops {
				for _, a := range op.Args {
					if a.Kind == OpResult && partOf[a.ID] > partOf[op.ID] {
						t.Logf("seed %d: op %d depends on later partition", seed, op.ID)
						return false
					}
					if a.Kind == OpResult && a.ID >= op.ID {
						t.Logf("seed %d: op %d consumes a not-yet-defined value %d", seed, op.ID, a.ID)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReorderPreservesDependencies checks the pressure-aware scheduler
// emits a valid topological order and keeps output sources intact.
func TestReorderPreservesDependencies(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 2
		u := randomUnit(rng, n)
		reorderForPressure(u)
		if len(u.Ops) != n {
			return false
		}
		for i, op := range u.Ops {
			if op.ID != i {
				return false // renumbering broken
			}
			for _, a := range op.Args {
				if a.Kind == OpResult && a.ID >= i {
					return false // dependency violated
				}
			}
		}
		for _, o := range u.Outs {
			if o.Src.Kind == OpResult && (o.Src.ID < 0 || o.Src.ID >= n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestCSEDeduplicatesRepeatedSubtrees verifies Black-Scholes-style shared
// subexpressions lower once.
func TestCSEDeduplicatesRepeatedSubtrees(t *testing.T) {
	b := dhdl.NewBuilder("cse", dhdl.Sequential)
	s := b.SRAM("s", pattern.F32, 64)
	d := b.SRAM("d", pattern.F32, 64)
	b.Compute("c", []dhdl.Counter{dhdl.CPar(64, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
		// shared = (s[i]+1)*2, used four times.
		shared := dhdl.Mul(dhdl.Add(dhdl.Ld(s, ix[0]), dhdl.CF(1)), dhdl.CF(2))
		v := dhdl.Add(dhdl.Mul(shared, shared), dhdl.Sub(shared, shared))
		return []*dhdl.Assign{dhdl.StoreAt(d, ix[0], v)}
	})
	v, err := Allocate(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	// Without CSE: 4 copies of (add,mul) + mul + sub + add = 11 ops.
	// With CSE: add, mul (shared), mul, sub, add = 5.
	if got := len(v.PCUs[0].Ops); got != 5 {
		t.Errorf("got %d ops, want 5 (CSE should share the repeated subtree)", got)
	}
}

// TestCSEDoesNotMergeFIFOPops verifies side-effecting pops stay distinct.
func TestCSEDoesNotMergeFIFOPops(t *testing.T) {
	b := dhdl.NewBuilder("pops", dhdl.Sequential)
	f := b.FIFO("f", pattern.F32, 64)
	d := b.SRAM("d", pattern.F32, 64)
	b.Compute("c", []dhdl.Counter{dhdl.C(32)}, func(ix []dhdl.Expr) []*dhdl.Assign {
		// Two pops per iteration: sum of consecutive pairs.
		v := dhdl.Add(dhdl.Pop(f), dhdl.Pop(f))
		return []*dhdl.Assign{dhdl.StoreAt(d, ix[0], v)}
	})
	v, err := Allocate(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	// The two pops share one FIFO input bus in the current model, but the
	// expression must not be CSE-collapsed into pop(x)+pop(x) -> 2*pop(x):
	// the add op must still take two operands from the FIFO stream.
	u := v.PCUs[0]
	if len(u.Ops) != 1 {
		t.Fatalf("ops = %d, want 1 (the add)", len(u.Ops))
	}
}
