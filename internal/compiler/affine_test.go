package compiler

import (
	"testing"

	"plasticine/internal/arch"
	"plasticine/internal/dhdl"
	"plasticine/internal/pattern"
)

func TestAnalyzeAffine(t *testing.T) {
	cases := []struct {
		e     dhdl.Expr
		coeff map[int]int64
		k     int64
		ok    bool
	}{
		{dhdl.CI(5), map[int]int64{}, 5, true},
		{dhdl.Idx(1), map[int]int64{1: 1}, 0, true},
		{dhdl.Add(dhdl.Mul(dhdl.Idx(0), dhdl.CI(32)), dhdl.Idx(1)), map[int]int64{0: 32, 1: 1}, 0, true},
		{dhdl.Sub(dhdl.Mul(dhdl.CI(4), dhdl.Idx(2)), dhdl.CI(3)), map[int]int64{2: 4}, -3, true},
		{dhdl.Sub(dhdl.Idx(0), dhdl.Idx(0)), map[int]int64{}, 0, true},       // cancels
		{dhdl.Mul(dhdl.Idx(0), dhdl.Idx(1)), nil, 0, false},                  // quadratic
		{dhdl.Ld(&dhdl.SRAM{Name: "s", Size: 4}, dhdl.CI(0)), nil, 0, false}, // data-dependent
		{dhdl.CF(1.5), nil, 0, false},                                        // float literal is not an address
	}
	for i, c := range cases {
		a, ok := AnalyzeAffine(c.e)
		if ok != c.ok {
			t.Errorf("case %d: ok = %v, want %v", i, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if a.Const != c.k {
			t.Errorf("case %d: const = %d, want %d", i, a.Const, c.k)
		}
		if len(a.Coeff) != len(c.coeff) {
			t.Errorf("case %d: coeff = %v, want %v", i, a.Coeff, c.coeff)
			continue
		}
		for l, v := range c.coeff {
			if a.Coeff[l] != v {
				t.Errorf("case %d: coeff[%d] = %d, want %d", i, l, a.Coeff[l], v)
			}
		}
	}
}

func TestLaneStride(t *testing.T) {
	s := &dhdl.SRAM{Name: "tbl", Size: 64}
	const lane = 2
	cases := []struct {
		e      dhdl.Expr
		stride int64
		ok     bool
	}{
		{dhdl.Idx(lane), 1, true},
		{dhdl.Add(dhdl.Mul(dhdl.Idx(0), dhdl.CI(8)), dhdl.Idx(lane)), 1, true},
		{dhdl.Mul(dhdl.Idx(lane), dhdl.CI(4)), 4, true},
		{dhdl.Idx(0), 0, true}, // lane-invariant
		// Data-dependent but lane-invariant base: still affine in the lane.
		{dhdl.Add(dhdl.Mul(dhdl.Ld(s, dhdl.Idx(0)), dhdl.CI(8)), dhdl.Idx(lane)), 1, true},
		// Per-lane gather: not affine.
		{dhdl.Ld(s, dhdl.Idx(lane)), 0, false},
		// Lane times a data-dependent value: unknown stride.
		{dhdl.Mul(dhdl.Idx(lane), dhdl.Ld(s, dhdl.CI(0))), 0, false},
	}
	for i, c := range cases {
		stride, ok := LaneStride(c.e, lane)
		if ok != c.ok || (ok && stride != c.stride) {
			t.Errorf("case %d: (%d, %v), want (%d, %v)", i, stride, ok, c.stride, c.ok)
		}
	}
}

func TestStrideConflictFactor(t *testing.T) {
	cases := []struct {
		stride int64
		banks  int
		want   int
	}{
		{0, 16, 1}, // broadcast
		{1, 16, 1}, // conflict-free
		{3, 16, 1}, // coprime
		{2, 16, 2}, // half the banks
		{8, 16, 8}, // two banks
		{16, 16, 16},
		{-2, 16, 2}, // magnitude
	}
	for _, c := range cases {
		if got := StrideConflictFactor(c.stride, c.banks); got != c.want {
			t.Errorf("StrideConflictFactor(%d, %d) = %d, want %d", c.stride, c.banks, got, c.want)
		}
	}
}

func TestBankingForSelectsDuplicationOnGather(t *testing.T) {
	s := &dhdl.SRAM{Name: "idx", Size: 64}
	if got := BankingFor(dhdl.Idx(0), 0); got != dhdl.Strided {
		t.Errorf("streaming access got %v, want strided", got)
	}
	if got := BankingFor(dhdl.Ld(s, dhdl.Idx(0)), 0); got != dhdl.Duplication {
		t.Errorf("per-lane gather got %v, want duplication", got)
	}
}

func TestCompileSetsIIFromBankConflicts(t *testing.T) {
	// Lanes read addr i*8 over 16 banks -> gcd 8 -> II 8.
	build := func(stride int32) *dhdl.Program {
		b := dhdl.NewBuilder("conf", dhdl.Sequential)
		src := b.SRAM("src", pattern.F32, 8192)
		dst := b.SRAM("dst", pattern.F32, 1024)
		b.Compute("c", []dhdl.Counter{dhdl.CPar(1024, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
			return []*dhdl.Assign{dhdl.StoreAt(dst, ix[0],
				dhdl.Ld(src, dhdl.Mul(ix[0], dhdl.CI(stride))))}
		})
		return b.MustBuild()
	}
	leafII := func(p *dhdl.Program) int {
		m, err := Compile(p, arch.Default())
		if err != nil {
			t.Fatal(err)
		}
		for leaf, lm := range m.Leaves {
			if leaf.Name == "c" {
				return lm.II
			}
		}
		t.Fatal("leaf not found")
		return 0
	}
	if ii := leafII(build(1)); ii != 1 {
		t.Errorf("stride-1 II = %d, want 1", ii)
	}
	if ii := leafII(build(8)); ii != 8 {
		t.Errorf("stride-8 II = %d, want 8 (bank conflicts)", ii)
	}
}

func TestCompileAutoSelectsDuplicationBanking(t *testing.T) {
	b := dhdl.NewBuilder("dup", dhdl.Sequential)
	idx := b.SRAM("idx", pattern.I32, 1024)
	tbl := b.SRAM("tbl", pattern.F32, 1024)
	dst := b.SRAM("dst", pattern.F32, 1024)
	b.Compute("g", []dhdl.Counter{dhdl.CPar(1024, 16)}, func(ix []dhdl.Expr) []*dhdl.Assign {
		return []*dhdl.Assign{dhdl.StoreAt(dst, ix[0], dhdl.Ld(tbl, dhdl.Ld(idx, ix[0])))}
	})
	if _, err := Compile(b.MustBuild(), arch.Default()); err != nil {
		t.Fatal(err)
	}
	if tbl.Banking != dhdl.Duplication {
		t.Errorf("on-chip gather target banking = %v, want duplication (compiler-selected)", tbl.Banking)
	}
	if idx.Banking != dhdl.Strided {
		t.Errorf("streamed index banking = %v, want strided", idx.Banking)
	}
}
