package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// EventKind classifies a timed mid-run fault.
type EventKind int

const (
	KillPCU EventKind = iota
	KillPMU
	KillSwitch
	KillChan
)

var kindNames = map[EventKind]string{
	KillPCU: "kill-pcu", KillPMU: "kill-pmu",
	KillSwitch: "kill-sw", KillChan: "kill-chan",
}

func (k EventKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// EventSpec is one requested timed fault: kill one resource of Kind at
// Cycle. The concrete victim is drawn deterministically when the plan is
// built, so a spec stays chip-independent and seed-reproducible.
type EventSpec struct {
	Kind  EventKind
	Cycle int64
}

// Event is a scheduled timed fault with its victim resolved. For fabric
// kinds Victim is the tile/switch coordinate; for KillChan, Chan is the
// DRAM channel.
type Event struct {
	Kind   EventKind
	Cycle  int64
	Victim Coord // KillPCU / KillPMU / KillSwitch
	Chan   int   // KillChan
}

func (e Event) String() string {
	if e.Kind == KillChan {
		return fmt.Sprintf("%v@%d ch%d", e.Kind, e.Cycle, e.Chan)
	}
	return fmt.Sprintf("%v@%d (%d,%d)", e.Kind, e.Cycle, e.Victim.X, e.Victim.Y)
}

// parseEventTerm parses one "kill-<kind>@<cycle>" spec term.
func parseEventTerm(field string) (EventSpec, error) {
	name, at, ok := strings.Cut(field, "@")
	if !ok {
		return EventSpec{}, fmt.Errorf("%w: %q wants kill-<kind>@<cycle>", ErrBadSpec, field)
	}
	var kind EventKind
	found := false
	for k, n := range kindNames {
		if n == name {
			kind, found = k, true
			break
		}
	}
	if !found {
		return EventSpec{}, fmt.Errorf("%w: unknown event %q (want kill-pcu, kill-pmu, kill-sw or kill-chan)", ErrBadSpec, name)
	}
	cyc, err := strconv.ParseInt(at, 10, 64)
	if err != nil || cyc < 0 {
		return EventSpec{}, fmt.Errorf("%w: %s@%q wants a non-negative cycle", ErrBadSpec, name, at)
	}
	return EventSpec{Kind: kind, Cycle: cyc}, nil
}

// scheduleEvents resolves each requested event to a concrete victim, drawing
// with the plan's PRNG from the resources still healthy at that point (not
// statically disabled, not consumed by an earlier event). Events are
// processed in firing order so the schedule is deterministic for a fixed
// (spec, chip) regardless of the order terms were written in.
func (p *Plan) scheduleEvents(specs []EventSpec, pcuSlots, pmuSlots, swSlots []Coord, chans int, rng intner) error {
	if len(specs) == 0 {
		return nil
	}
	ordered := append([]EventSpec(nil), specs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Cycle < ordered[j].Cycle })
	taken := map[Coord]bool{}
	drawTile := func(slots []Coord, dead map[Coord]bool) (Coord, bool) {
		var alive []Coord
		for _, c := range slots {
			if !dead[c] && !taken[c] {
				alive = append(alive, c)
			}
		}
		if len(alive) == 0 {
			return Coord{}, false
		}
		c := alive[rng.Intn(len(alive))]
		taken[c] = true
		return c, true
	}
	chanDead := append([]bool(nil), p.downChan...)
	for _, es := range ordered {
		ev := Event{Kind: es.Kind, Cycle: es.Cycle}
		switch es.Kind {
		case KillPCU, KillPMU, KillSwitch:
			slots, dead := pcuSlots, p.disabledPCU
			if es.Kind == KillPMU {
				slots, dead = pmuSlots, p.disabledPMU
			} else if es.Kind == KillSwitch {
				slots, dead = swSlots, p.disabledSw
			}
			c, ok := drawTile(slots, dead)
			if !ok {
				return fmt.Errorf("%w: %v@%d has no healthy victim left", ErrBadSpec, es.Kind, es.Cycle)
			}
			ev.Victim = c
		case KillChan:
			var alive []int
			for c := 0; c < chans; c++ {
				if c >= len(chanDead) || !chanDead[c] {
					alive = append(alive, c)
				}
			}
			if len(alive) == 0 {
				return fmt.Errorf("%w: kill-chan@%d has no healthy channel left", ErrBadSpec, es.Cycle)
			}
			ev.Chan = alive[rng.Intn(len(alive))]
			for len(chanDead) <= ev.Chan {
				chanDead = append(chanDead, false)
			}
			chanDead[ev.Chan] = true
		default:
			return fmt.Errorf("%w: unknown event kind %d", ErrBadSpec, es.Kind)
		}
		p.events = append(p.events, ev)
	}
	return nil
}

// intner is the PRNG slice scheduleEvents needs (satisfied by *rand.Rand).
type intner interface{ Intn(int) int }

// Events returns the timed fault schedule in firing order. Nil-safe.
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	return append([]Event(nil), p.events...)
}

// AddEvent schedules an explicit timed fault — the manual-plan counterpart
// to the seeded draw, for tests and measured-trace replay. Events must be
// added in firing order.
func (p *Plan) AddEvent(ev Event) error {
	if n := len(p.events); n > 0 && p.events[n-1].Cycle > ev.Cycle {
		return fmt.Errorf("%w: event %v scheduled before already-queued %v", ErrBadSpec, ev, p.events[n-1])
	}
	p.events = append(p.events, ev)
	return nil
}

// Extend applies a fired event to the plan: the victim becomes statically
// dead, so subsequent compiles (incremental repair or full recompile) and
// the DRAM fault view account for it. The recovery controller calls this
// when the event's cycle is reached.
func (p *Plan) Extend(ev Event) error {
	switch ev.Kind {
	case KillPCU:
		if p.disabledPCU == nil {
			p.disabledPCU = map[Coord]bool{}
		}
		if p.disabledPCU[ev.Victim] {
			return fmt.Errorf("%w: PCU (%d,%d) is already dead", ErrBadSpec, ev.Victim.X, ev.Victim.Y)
		}
		p.disabledPCU[ev.Victim] = true
		p.Spec.PCUs = len(p.disabledPCU)
	case KillPMU:
		if p.disabledPMU == nil {
			p.disabledPMU = map[Coord]bool{}
		}
		if p.disabledPMU[ev.Victim] {
			return fmt.Errorf("%w: PMU (%d,%d) is already dead", ErrBadSpec, ev.Victim.X, ev.Victim.Y)
		}
		p.disabledPMU[ev.Victim] = true
		p.Spec.PMUs = len(p.disabledPMU)
	case KillSwitch:
		if p.disabledSw == nil {
			p.disabledSw = map[Coord]bool{}
		}
		if p.disabledSw[ev.Victim] {
			return fmt.Errorf("%w: switch (%d,%d) is already dead", ErrBadSpec, ev.Victim.X, ev.Victim.Y)
		}
		p.disabledSw[ev.Victim] = true
		p.Spec.Switches = len(p.disabledSw)
	case KillChan:
		if ev.Chan < 0 {
			return fmt.Errorf("%w: kill-chan victim %d out of range", ErrBadSpec, ev.Chan)
		}
		for len(p.downChan) <= ev.Chan {
			p.downChan = append(p.downChan, false)
		}
		if p.downChan[ev.Chan] {
			return fmt.Errorf("%w: channel %d is already down", ErrBadSpec, ev.Chan)
		}
		p.downChan[ev.Chan] = true
		p.Spec.Chans++
	default:
		return fmt.Errorf("%w: unknown event kind %d", ErrBadSpec, ev.Kind)
	}
	return nil
}
