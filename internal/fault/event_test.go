package fault

import (
	"errors"
	"reflect"
	"testing"

	"plasticine/internal/arch"
)

func TestParseSpecEvents(t *testing.T) {
	spec, err := ParseSpec("seed=3, kill-pcu@5000, kill-chan@12000, kill-pcu@9000")
	if err != nil {
		t.Fatal(err)
	}
	want := []EventSpec{
		{Kind: KillPCU, Cycle: 5000},
		{Kind: KillChan, Cycle: 12000},
		{Kind: KillPCU, Cycle: 9000},
	}
	if !reflect.DeepEqual(spec.Events, want) {
		t.Errorf("parsed events %+v, want %+v", spec.Events, want)
	}
	if spec.Zero() {
		t.Error("spec with events reports Zero")
	}
	for _, bad := range []string{
		"kill-pcu", "kill-pcu@", "kill-pcu@-5", "kill-pcu@x", "kill-frob@100",
	} {
		if _, err := ParseSpec(bad); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseSpec(%q): want ErrBadSpec, got %v", bad, err)
		}
	}
}

func TestEventScheduleDeterministic(t *testing.T) {
	params := arch.Default()
	spec := Spec{Seed: 21, PCUs: 3,
		Events: []EventSpec{
			{Kind: KillChan, Cycle: 8000},
			{Kind: KillPCU, Cycle: 2000},
			{Kind: KillPMU, Cycle: 4000},
			{Kind: KillSwitch, Cycle: 4000},
		}}
	a, err := NewPlan(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Errorf("same seed produced different schedules:\n%v\n%v", a.Events(), b.Events())
	}
	evs := a.Events()
	if len(evs) != 4 {
		t.Fatalf("scheduled %d events, want 4", len(evs))
	}
	// Firing order, regardless of spec order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Errorf("events out of firing order: %v", evs)
		}
	}
	// Victims are healthy at schedule time: not statically disabled.
	for _, ev := range evs {
		switch ev.Kind {
		case KillPCU:
			if a.PCUDisabled(ev.Victim.X, ev.Victim.Y) {
				t.Errorf("%v targets an already-dead PCU", ev)
			}
			if (ev.Victim.X+ev.Victim.Y)%2 != 0 {
				t.Errorf("%v targets a PMU slot", ev)
			}
		case KillPMU:
			if a.PMUDisabled(ev.Victim.X, ev.Victim.Y) {
				t.Errorf("%v targets an already-dead PMU", ev)
			}
		case KillSwitch:
			if a.SwitchDisabled(ev.Victim.X, ev.Victim.Y) {
				t.Errorf("%v targets an already-dead switch", ev)
			}
		}
	}
}

func TestEventOversubscriptionRejected(t *testing.T) {
	params := arch.Default()
	events := make([]EventSpec, params.Chip.DDRChannels+1)
	for i := range events {
		events[i] = EventSpec{Kind: KillChan, Cycle: int64(i)}
	}
	if _, err := NewPlan(Spec{Events: events}, params); !errors.Is(err, ErrBadSpec) {
		t.Errorf("killing more channels than exist: want ErrBadSpec, got %v", err)
	}
	if _, err := NewPlan(Spec{PCUs: params.NumPCUs(),
		Events: []EventSpec{{Kind: KillPCU, Cycle: 1}}}, params); !errors.Is(err, ErrBadSpec) {
		t.Error("killing a PCU with every PCU statically dead must fail")
	}
}

func TestExtendAppliesEvent(t *testing.T) {
	plan := ManualPlan(nil, nil, nil, nil)
	if err := plan.Extend(Event{Kind: KillPCU, Victim: Coord{2, 2}}); err != nil {
		t.Fatal(err)
	}
	if !plan.PCUDisabled(2, 2) || plan.Spec.PCUs != 1 {
		t.Errorf("Extend did not disable the PCU: %s", plan)
	}
	if err := plan.Extend(Event{Kind: KillPCU, Victim: Coord{2, 2}}); err == nil {
		t.Error("re-killing a dead PCU must fail")
	}
	if err := plan.Extend(Event{Kind: KillChan, Chan: 1}); err != nil {
		t.Fatal(err)
	}
	df := plan.DRAMFaults()
	if df == nil || len(df.Down) < 2 || !df.Down[1] {
		t.Errorf("Extend(kill-chan) not visible in DRAM faults: %+v", df)
	}
	if err := plan.Extend(Event{Kind: KillChan, Chan: 1}); err == nil {
		t.Error("re-killing a downed channel must fail")
	}
	if err := plan.Extend(Event{Kind: KillSwitch, Victim: Coord{5, 5}}); err != nil {
		t.Fatal(err)
	}
	if !plan.SwitchDisabled(5, 5) || !plan.HasSwitchFaults() {
		t.Error("Extend did not disable the switch")
	}
	if err := plan.Extend(Event{Kind: KillPMU, Victim: Coord{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if !plan.PMUDisabled(1, 2) {
		t.Error("Extend did not disable the PMU")
	}
}

func TestAddEventOrdering(t *testing.T) {
	plan := ManualPlan(nil, nil, nil, nil)
	if err := plan.AddEvent(Event{Kind: KillPCU, Cycle: 100, Victim: Coord{0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := plan.AddEvent(Event{Kind: KillPCU, Cycle: 50, Victim: Coord{2, 0}}); err == nil {
		t.Error("out-of-order AddEvent must fail")
	}
	if n := len(plan.Events()); n != 1 {
		t.Errorf("plan holds %d events, want 1", n)
	}
}
