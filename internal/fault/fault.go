// Package fault defines seeded, deterministic fault plans for the
// Plasticine fabric and memory system: disabled PCU/PMU tiles and switches
// in the 16x8 array, downed DRAM channels, per-request latency spikes and
// transient burst failures. A plan is generated once from a Spec and a
// chip configuration; every consumer (placer, router, DRAM model,
// simulator) reads the same plan, so a fixed seed reproduces the identical
// degraded system across runs. Yield-aware mapping around disabled tiles
// follows the spatial re-allocation approach of CGRA mapping work (see
// PAPERS.md: aligned compute/communication provisioning, DR-CGRA).
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"plasticine/internal/arch"
	"plasticine/internal/dram"
)

// ErrBadSpec is wrapped by every Spec parsing/validation error.
var ErrBadSpec = errors.New("fault: bad fault spec")

// Spec is the user-facing description of a fault scenario, parseable from
// the CLI form "seed=N,pcu=K,pmu=K,sw=K,chan=K,spike=P,retry=P".
type Spec struct {
	Seed int64

	// Fabric faults: number of units of each kind to disable.
	PCUs     int // disabled Pattern Compute Unit tiles
	PMUs     int // disabled Pattern Memory Unit tiles
	Switches int // disabled switch sites (routes detour around them)

	// Memory-system faults.
	Chans         int     // downed DRAM channels (traffic remaps to healthy ones)
	SpikeProb     float64 // per-burst probability of a latency spike
	SpikeCycles   int     // extra cycles a spiked burst takes (default 200)
	TransientProb float64 // per-burst probability of a transient failure needing retry
	MaxRetries    int     // bounded retries per burst (default 3)
	RetryBackoff  int     // base backoff in cycles, doubled per attempt (default 16)

	// Events are timed mid-run faults ("kill-pcu@5000"); victims are drawn
	// deterministically at plan time from the resources still healthy.
	Events []EventSpec
}

// withDefaults fills derived defaults for enabled fault classes.
func (s Spec) withDefaults() Spec {
	if s.SpikeProb > 0 && s.SpikeCycles == 0 {
		s.SpikeCycles = 200
	}
	if s.TransientProb > 0 {
		if s.MaxRetries == 0 {
			s.MaxRetries = 3
		}
		if s.RetryBackoff == 0 {
			s.RetryBackoff = 16
		}
	}
	return s
}

// Zero reports whether the spec injects no faults at all.
func (s Spec) Zero() bool {
	return s.PCUs == 0 && s.PMUs == 0 && s.Switches == 0 &&
		s.Chans == 0 && s.SpikeProb == 0 && s.TransientProb == 0 &&
		len(s.Events) == 0
}

// ParseSpec parses the CLI fault syntax: comma-separated key=value pairs.
// Keys: seed, pcu, pmu, sw, chan, spike, spikecycles, retry, maxretries,
// backoff. Timed-event terms use "kill-<kind>@<cycle>" (kinds: pcu, pmu,
// sw, chan) and may repeat. An empty string yields the zero spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if strings.HasPrefix(field, "kill-") {
			ev, err := parseEventTerm(field)
			if err != nil {
				return spec, err
			}
			spec.Events = append(spec.Events, ev)
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return spec, fmt.Errorf("%w: %q is not key=value", ErrBadSpec, field)
		}
		intVal := func() (int, error) {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("%w: %s=%q wants a non-negative integer", ErrBadSpec, k, v)
			}
			return n, nil
		}
		probVal := func() (float64, error) {
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return 0, fmt.Errorf("%w: %s=%q wants a probability in [0,1]", ErrBadSpec, k, v)
			}
			return p, nil
		}
		var err error
		switch k {
		case "seed":
			spec.Seed, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				err = fmt.Errorf("%w: seed=%q wants an integer", ErrBadSpec, v)
			}
		case "pcu":
			spec.PCUs, err = intVal()
		case "pmu":
			spec.PMUs, err = intVal()
		case "sw":
			spec.Switches, err = intVal()
		case "chan":
			spec.Chans, err = intVal()
		case "spike":
			spec.SpikeProb, err = probVal()
		case "spikecycles":
			spec.SpikeCycles, err = intVal()
		case "retry":
			spec.TransientProb, err = probVal()
		case "maxretries":
			spec.MaxRetries, err = intVal()
		case "backoff":
			spec.RetryBackoff, err = intVal()
		default:
			err = fmt.Errorf("%w: unknown key %q", ErrBadSpec, k)
		}
		if err != nil {
			return spec, err
		}
	}
	return spec, nil
}

// Coord is a unit or switch position on the fabric grid.
type Coord struct{ X, Y int }

// Plan is a concrete fault assignment for one chip configuration. All
// fields are derived deterministically from (Spec, arch.Params); the same
// inputs always produce the same plan.
type Plan struct {
	Spec Spec

	disabledPCU map[Coord]bool
	disabledPMU map[Coord]bool
	disabledSw  map[Coord]bool
	downChan    []bool  // indexed by channel
	events      []Event // timed mid-run faults, in firing order
}

// NewPlan draws a deterministic fault assignment for the given chip. It
// fails (wrapping ErrBadSpec) if the spec disables more units than exist.
func NewPlan(spec Spec, p arch.Params) (*Plan, error) {
	spec = spec.withDefaults()
	cols, rows := p.Chip.Cols, p.Chip.Rows
	var pcuSlots, pmuSlots, swSlots []Coord
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			c := Coord{x, y}
			swSlots = append(swSlots, c)
			if (x+y)%2 == 0 {
				pcuSlots = append(pcuSlots, c)
			} else {
				pmuSlots = append(pmuSlots, c)
			}
		}
	}
	evCount := func(k EventKind) int {
		n := 0
		for _, e := range spec.Events {
			if e.Kind == k {
				n++
			}
		}
		return n
	}
	if n := spec.PCUs + evCount(KillPCU); n > len(pcuSlots) {
		return nil, fmt.Errorf("%w: pcu=%d exceeds %d PCU tiles on the chip", ErrBadSpec, n, len(pcuSlots))
	}
	if n := spec.PMUs + evCount(KillPMU); n > len(pmuSlots) {
		return nil, fmt.Errorf("%w: pmu=%d exceeds %d PMU tiles on the chip", ErrBadSpec, n, len(pmuSlots))
	}
	if n := spec.Switches + evCount(KillSwitch); n > len(swSlots) {
		return nil, fmt.Errorf("%w: sw=%d exceeds %d switch sites", ErrBadSpec, n, len(swSlots))
	}
	if n := spec.Chans + evCount(KillChan); n > p.Chip.DDRChannels {
		return nil, fmt.Errorf("%w: chan=%d exceeds %d DRAM channels", ErrBadSpec, n, p.Chip.DDRChannels)
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	pick := func(slots []Coord, k int) map[Coord]bool {
		out := make(map[Coord]bool, k)
		// Partial Fisher-Yates over a copy: deterministic for a fixed seed.
		s := append([]Coord(nil), slots...)
		for i := 0; i < k; i++ {
			j := i + rng.Intn(len(s)-i)
			s[i], s[j] = s[j], s[i]
			out[s[i]] = true
		}
		return out
	}
	plan := &Plan{
		Spec:        spec,
		disabledPCU: pick(pcuSlots, spec.PCUs),
		disabledPMU: pick(pmuSlots, spec.PMUs),
		disabledSw:  pick(swSlots, spec.Switches),
		downChan:    make([]bool, p.Chip.DDRChannels),
	}
	for i := 0; i < spec.Chans; i++ {
		// Draw distinct channels.
		for {
			c := rng.Intn(p.Chip.DDRChannels)
			if !plan.downChan[c] {
				plan.downChan[c] = true
				break
			}
		}
	}
	if err := plan.scheduleEvents(spec.Events, pcuSlots, pmuSlots, swSlots,
		p.Chip.DDRChannels, rng); err != nil {
		return nil, err
	}
	return plan, nil
}

// ManualPlan builds a plan from explicit fault sites instead of a seeded
// draw — for tests and for replaying a measured yield map. downChans is
// indexed by DRAM channel; a nil slice means all channels are up.
func ManualPlan(pcus, pmus, sws []Coord, downChans []bool) *Plan {
	toSet := func(cs []Coord) map[Coord]bool {
		m := make(map[Coord]bool, len(cs))
		for _, c := range cs {
			m[c] = true
		}
		return m
	}
	plan := &Plan{
		disabledPCU: toSet(pcus),
		disabledPMU: toSet(pmus),
		disabledSw:  toSet(sws),
		downChan:    append([]bool(nil), downChans...),
	}
	for _, d := range downChans {
		if d {
			plan.Spec.Chans++
		}
	}
	plan.Spec.PCUs = len(plan.disabledPCU)
	plan.Spec.PMUs = len(plan.disabledPMU)
	plan.Spec.Switches = len(plan.disabledSw)
	return plan
}

// Clone returns a deep copy of the plan. The recovery controller mutates a
// plan in place as timed events fire (Extend marks victims statically
// dead), so concurrent evaluation jobs must each run against their own
// copy; sharing one plan across a worker pool is a data race and breaks
// run-to-run determinism. Nil-safe.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	cloneSet := func(m map[Coord]bool) map[Coord]bool {
		if m == nil {
			return nil
		}
		out := make(map[Coord]bool, len(m))
		for c, v := range m {
			out[c] = v
		}
		return out
	}
	c := &Plan{
		Spec:        p.Spec,
		disabledPCU: cloneSet(p.disabledPCU),
		disabledPMU: cloneSet(p.disabledPMU),
		disabledSw:  cloneSet(p.disabledSw),
		downChan:    append([]bool(nil), p.downChan...),
		events:      append([]Event(nil), p.events...),
	}
	c.Spec.Events = append([]EventSpec(nil), p.Spec.Events...)
	return c
}

// PCUDisabled reports whether the PCU tile at (x, y) is faulted. Nil-safe.
func (p *Plan) PCUDisabled(x, y int) bool {
	return p != nil && p.disabledPCU[Coord{x, y}]
}

// PMUDisabled reports whether the PMU tile at (x, y) is faulted. Nil-safe.
func (p *Plan) PMUDisabled(x, y int) bool {
	return p != nil && p.disabledPMU[Coord{x, y}]
}

// SwitchDisabled reports whether the switch at (x, y) is faulted. Nil-safe.
func (p *Plan) SwitchDisabled(x, y int) bool {
	return p != nil && p.disabledSw[Coord{x, y}]
}

// NumDisabledPCUs returns the count of faulted PCU tiles. Nil-safe.
func (p *Plan) NumDisabledPCUs() int {
	if p == nil {
		return 0
	}
	return len(p.disabledPCU)
}

// NumDisabledPMUs returns the count of faulted PMU tiles. Nil-safe.
func (p *Plan) NumDisabledPMUs() int {
	if p == nil {
		return 0
	}
	return len(p.disabledPMU)
}

// HasSwitchFaults reports whether any switch site is disabled. Nil-safe.
func (p *Plan) HasSwitchFaults() bool {
	return p != nil && len(p.disabledSw) > 0
}

// HasFabricFaults reports whether any fabric resource is disabled. Nil-safe.
func (p *Plan) HasFabricFaults() bool {
	return p != nil && (len(p.disabledPCU) > 0 || len(p.disabledPMU) > 0 || len(p.disabledSw) > 0)
}

// DRAMFaults derives the memory-system fault configuration, or nil when the
// plan injects no DRAM faults (so the unfaulted DRAM path stays untouched).
// Nil-safe.
func (p *Plan) DRAMFaults() *dram.Faults {
	if p == nil {
		return nil
	}
	s := p.Spec
	if s.Chans == 0 && s.SpikeProb == 0 && s.TransientProb == 0 {
		return nil
	}
	return &dram.Faults{
		Seed:          s.Seed,
		SpikeProb:     s.SpikeProb,
		SpikeCycles:   s.SpikeCycles,
		TransientProb: s.TransientProb,
		MaxRetries:    s.MaxRetries,
		RetryBackoff:  s.RetryBackoff,
		Down:          append([]bool(nil), p.downChan...),
	}
}

// sortedCoords returns map keys in row-major order for stable rendering.
func sortedCoords(m map[Coord]bool) []Coord {
	out := make([]Coord, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}

// String renders the plan for diagnostics; byte-identical for equal plans.
func (p *Plan) String() string {
	if p == nil {
		return "fault: no plan"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan (seed %d):", p.Spec.Seed)
	section := func(name string, m map[Coord]bool) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(&b, " %s[", name)
		for i, c := range sortedCoords(m) {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d,%d", c.X, c.Y)
		}
		b.WriteByte(']')
	}
	section("pcu", p.disabledPCU)
	section("pmu", p.disabledPMU)
	section("sw", p.disabledSw)
	var down []int
	for c, d := range p.downChan {
		if d {
			down = append(down, c)
		}
	}
	if len(down) > 0 {
		fmt.Fprintf(&b, " chan%v", down)
	}
	if p.Spec.SpikeProb > 0 {
		fmt.Fprintf(&b, " spike=%g/+%dcy", p.Spec.SpikeProb, p.Spec.SpikeCycles)
	}
	if p.Spec.TransientProb > 0 {
		fmt.Fprintf(&b, " retry=%g/max%d", p.Spec.TransientProb, p.Spec.MaxRetries)
	}
	for _, ev := range p.events {
		fmt.Fprintf(&b, " %v", ev)
	}
	if p.Spec.Zero() {
		b.WriteString(" (no faults)")
	}
	return b.String()
}
