package fault

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"plasticine/internal/arch"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=7, pcu=4, pmu=2, sw=1, chan=1, spike=0.01, retry=0.001")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Seed: 7, PCUs: 4, PMUs: 2, Switches: 1, Chans: 1,
		SpikeProb: 0.01, TransientProb: 0.001}
	if !reflect.DeepEqual(spec, want) {
		t.Errorf("parsed %+v, want %+v", spec, want)
	}
	if s, err := ParseSpec(""); err != nil || !s.Zero() {
		t.Errorf("empty spec: %+v, %v", s, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"pcu", "pcu=-1", "pcu=x", "spike=1.5", "retry=-0.1", "frobs=3", "seed=abc",
	} {
		if _, err := ParseSpec(bad); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseSpec(%q): want ErrBadSpec, got %v", bad, err)
		}
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	params := arch.Default()
	spec := Spec{Seed: 42, PCUs: 6, PMUs: 4, Switches: 3, Chans: 2,
		SpikeProb: 0.01, TransientProb: 0.001}
	a, err := NewPlan(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed produced different plans:\n%s\n%s", a, b)
	}
	spec.Seed = 43
	c, err := NewPlan(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Errorf("different seeds produced identical plans: %s", a)
	}
}

func TestNewPlanCounts(t *testing.T) {
	params := arch.Default()
	p, err := NewPlan(Spec{Seed: 1, PCUs: 5, PMUs: 3}, params)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumDisabledPCUs() != 5 || p.NumDisabledPMUs() != 3 {
		t.Errorf("disabled %d/%d, want 5/3", p.NumDisabledPCUs(), p.NumDisabledPMUs())
	}
	// Disabled PCU coordinates must be PCU slots ((x+y) even) and vice versa.
	npcu, npmu := 0, 0
	for y := 0; y < params.Chip.Rows; y++ {
		for x := 0; x < params.Chip.Cols; x++ {
			if p.PCUDisabled(x, y) {
				npcu++
				if (x+y)%2 != 0 {
					t.Errorf("PCU fault at PMU slot (%d,%d)", x, y)
				}
			}
			if p.PMUDisabled(x, y) {
				npmu++
				if (x+y)%2 != 1 {
					t.Errorf("PMU fault at PCU slot (%d,%d)", x, y)
				}
			}
		}
	}
	if npcu != 5 || npmu != 3 {
		t.Errorf("grid scan found %d/%d faults, want 5/3", npcu, npmu)
	}
}

func TestNewPlanRejectsOversized(t *testing.T) {
	params := arch.Default()
	for _, spec := range []Spec{
		{PCUs: params.NumPCUs() + 1},
		{PMUs: params.NumPMUs() + 1},
		{Switches: params.Chip.Cols*params.Chip.Rows + 1},
		{Chans: params.Chip.DDRChannels + 1},
	} {
		if _, err := NewPlan(spec, params); !errors.Is(err, ErrBadSpec) {
			t.Errorf("NewPlan(%+v): want ErrBadSpec, got %v", spec, err)
		}
	}
}

func TestNilPlanIsPristine(t *testing.T) {
	var p *Plan
	if p.PCUDisabled(0, 0) || p.PMUDisabled(0, 1) || p.SwitchDisabled(1, 1) {
		t.Error("nil plan reports disabled units")
	}
	if p.NumDisabledPCUs() != 0 || p.NumDisabledPMUs() != 0 {
		t.Error("nil plan reports nonzero counts")
	}
	if p.HasSwitchFaults() || p.HasFabricFaults() {
		t.Error("nil plan reports faults")
	}
	if p.DRAMFaults() != nil {
		t.Error("nil plan yields DRAM faults")
	}
}

func TestDRAMFaultsOnlyWhenRequested(t *testing.T) {
	params := arch.Default()
	fabricOnly, err := NewPlan(Spec{Seed: 9, PCUs: 2}, params)
	if err != nil {
		t.Fatal(err)
	}
	if fabricOnly.DRAMFaults() != nil {
		t.Error("fabric-only plan must not arm the DRAM fault model")
	}
	mem, err := NewPlan(Spec{Seed: 9, Chans: 1, TransientProb: 0.5}, params)
	if err != nil {
		t.Fatal(err)
	}
	df := mem.DRAMFaults()
	if df == nil {
		t.Fatal("memory plan yielded no DRAM faults")
	}
	down := 0
	for _, d := range df.Down {
		if d {
			down++
		}
	}
	if down != 1 {
		t.Errorf("downed channels = %d, want 1", down)
	}
	if df.MaxRetries != 3 || df.RetryBackoff != 16 {
		t.Errorf("retry defaults not applied: %+v", df)
	}
	if !strings.Contains(mem.String(), "chan[") {
		t.Errorf("plan string missing channel section: %s", mem)
	}
}
