package main

// The one shutdown path every session-owning subcommand shares. Suite
// commands, recovery and serve all end the same way: make the persistent
// cache tier durable (so an interrupted or killed run resumes from its
// completed design points) and account for the run on stderr — keeping
// stdout byte-identical across worker counts. Hoisted here so the SIGINT
// path, the normal path and the server drain cannot drift apart.

import (
	"fmt"
	"os"
	"time"

	"plasticine/internal/core"
)

// shutdownSession closes the session (flushing the disk cache tier — Close
// is idempotent, so a serve drain that already closed it is fine) and prints
// the wall-time/cache summary. Subcommands defer it immediately after
// building their session; on SIGINT/SIGTERM the deferred call still runs, so
// completed work survives for a resumed run.
// On the signal path this summary races with worker goroutines that have
// not observed cancellation yet; that is safe because every cache counter
// behind CacheStats (memory and disk tier alike) is atomic — see
// DiskCache.Stats.
func shutdownSession(cmd string, sess *core.Session, t0 time.Time) {
	if err := sess.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: cache flush: %v\n", cmd, err)
	}
	line := fmt.Sprintf("%s: %.2fs with %d worker(s); %s",
		cmd, time.Since(t0).Seconds(), sess.Workers(), sess.CacheStats())
	if r := sess.Retries(); r > 0 {
		line += fmt.Sprintf("; %d job retries", r)
	}
	fmt.Fprintln(os.Stderr, line)
}
