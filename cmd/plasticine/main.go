// Command plasticine regenerates the paper's evaluation artefacts from the
// command line:
//
//	plasticine info              architecture summary, area, power envelope
//	plasticine list              the thirteen Table 4 benchmarks
//	plasticine run <benchmark>   compile + simulate one benchmark
//	plasticine profile -bench b  cycle-level profile with stall attribution
//	plasticine bench [-json]     simulator throughput (BENCH_sim.json)
//	plasticine resilience <b>    degradation sweep under injected faults
//	plasticine table3            parameter selection (Section 3.7)
//	plasticine table5            area breakdown
//	plasticine table6            generalization area-overhead ladder
//	plasticine table7            full evaluation vs the FPGA baseline
//	plasticine fig7 [-panel a]   design-space sweep panels a-f
//	plasticine tune              Pareto-front auto-tuner over the design space
//
// Every subcommand is a thin shell over core.Session, the library facade
// that owns the worker pool and the design-point cache. Suite commands take
// -workers N to fan evaluation across cores; outputs on stdout are
// byte-identical at any worker count (timing and cache summaries go to
// stderr).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"plasticine/internal/arch"
	"plasticine/internal/compiler"
	"plasticine/internal/core"
	"plasticine/internal/dse"
	"plasticine/internal/exec"
	"plasticine/internal/fault"
	"plasticine/internal/sim"
	"plasticine/internal/stats"
	"plasticine/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C cancels the context; in-flight compiles stop at the next pass
	// boundary and simulations at the next ctx-check window.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "info":
		err = cmdInfo()
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(ctx, args)
	case "profile":
		err = cmdProfile(ctx, args)
	case "explain":
		err = cmdExplain(args)
	case "bench":
		err = cmdBench(ctx, args)
	case "resilience":
		err = cmdResilience(ctx, args)
	case "recovery":
		err = cmdRecovery(ctx, args)
	case "table3":
		err = cmdTable3(ctx, args)
	case "table5":
		fmt.Print(core.FormatTable5(core.New().Table5()))
	case "table6":
		err = cmdTable6(ctx, args)
	case "table7":
		err = cmdTable7(ctx, args)
	case "fig7":
		err = cmdFig7(ctx, args)
	case "bitstream":
		err = cmdBitstream(args)
	case "ratios":
		err = cmdRatios(ctx, args)
	case "tune":
		err = cmdTune(ctx, args)
	case "serve":
		err = cmdServe(ctx, args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "plasticine: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plasticine:", err)
		// SIGINT/SIGTERM cancel ctx; the deferred summaries above have
		// already flushed the persistent cache tier and printed partial
		// stats, so completed design points survive for a resumed run.
		if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			fmt.Fprintln(os.Stderr, "plasticine: interrupted; completed design points were flushed to the cache tier")
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: plasticine <command>

commands:
  info              architecture parameters, area and power envelope
  list              available benchmarks (Table 4)
  run <benchmark> [-faults spec] [-events list] [-budget cycles]
                    compile and simulate one benchmark vs the FPGA model,
                    optionally under an injected fault plan; -events adds
                    timed mid-run faults (kill-pcu@N,kill-pmu@N,kill-sw@N,
                    kill-chan@N) survived via checkpoint/repair/resume
  profile -bench <name> [-by-pattern] [-passes] [-events list] [-faults spec]
                    [-trace path] [-counters path]
                    cycle-level profile: per-unit busy/stall/idle accounting
                    with stall causes, DRAM channel and link utilization and
                    the named bottleneck; writes a Chrome trace-event JSON
                    (chrome://tracing, with compile passes on their own
                    track) and a flat counters JSON. -by-pattern rolls the
                    profile up by source pattern node instead of physical
                    unit (rows sum exactly to the makespan); -passes prints
                    the compiler pass trace
  explain -bench <name> [-cols N] [-rows N] [-faults spec] [-json]
                    source-level fit report: does the benchmark fit the
                    fabric, and if not, which pattern nodes demand the
                    resource that ran out (never panics; exits 0 with a
                    structured report either way)
  bench [-json] [-out path] [suite flags] [benchmark ...]
                    simulator throughput (simulated cycles vs host wall
                    time); -json writes BENCH_sim.json (schema in
                    EXPERIMENTS.md), -out overrides the output path
  resilience <benchmark> [-seed N] [-spike P] [-retry P] [suite flags]
                    makespan degradation vs fraction of disabled tiles,
                    optionally on a memory system with latency spikes
                    and transient burst failures
  recovery <benchmark> [-events list] [-seed N]
                    mid-run fault recovery overhead: drain, checkpoint,
                    repair/reconfigure, resume — vs the event-free run
  table3 [suite flags]
                    parameter selection sweep (Section 3.7)
  table5            area breakdown (Table 5)
  table6 [suite flags]
                    generalization overhead ladder (Table 6)
  table7 [-format table|csv|json] [suite flags]
                    full evaluation (Table 7)
  fig7 [-panel a] [suite flags]
                    design-space sweep panel a-f, or "all"
  bitstream <benchmark> [-json]
                    emit the compiled configuration (assembly or JSON)
  ratios [suite flags]
                    PMU:PCU provisioning study (Section 3.7)
  tune [-mix m] [-max-area mm2] [-max-power W] [-budget N] [-pop N]
       [-seed N] [-max-generations N] [-shard i/N] [-shard-wait d]
       [-json] [suite flags]
                    Pareto-front auto-tuner: search the architecture design
                    space for the given workload mix, minimising weighted
                    cycles, area and power under analytical constraints;
                    deterministic per -seed at any -workers, resumable from
                    a -cache-dir snapshot after a kill, shardable across
                    processes with -shard
  serve [-addr host:port] [-queue N] [-tenant-rate R] [-drain d] [suite flags]
                    multi-tenant evaluation service: HTTP/JSON endpoints
                    (/v1/run, /v1/compile, /v1/profile, /v1/explain,
                    /v1/sweep, /v1/tune, /statsz) over one shared session, with
                    per-tenant quotas, weighted-fair dispatch, load shedding
                    (429 + Retry-After, never 5xx under overload) and a
                    graceful SIGTERM drain that flushes the cache tier

suite flags (shared by bench, resilience, recovery and the sweeps):
  -workers N        fan evaluation across N goroutines (0 = all CPU cores)
                    backed by a shared design-point cache; stdout is
                    byte-identical at any worker count
  -cache-dir path   persist design-point results on disk: a killed or
                    interrupted sweep rerun with the same directory resumes
                    from its completed points (corrupt entries are
                    quarantined and recomputed, never fatal)
  -cache-mb N       size cap for -cache-dir, LRU-evicted (0 = 256)
  -job-timeout d    per-job deadline, e.g. 30s (0 = none)
  -job-retries N    extra attempts for transiently-failing jobs; retries
                    are accounted on stderr`)
}

// suiteFlags are the flags every suite subcommand shares: worker count,
// the disk-backed cache tier, and the per-job deadline/retry policy.
type suiteFlags struct {
	workers    *int
	cacheDir   *string
	cacheMB    *int
	jobTimeout *time.Duration
	jobRetries *int
	engine     *string
}

// addSuiteFlags registers the shared suite flags on a subcommand.
func addSuiteFlags(fs *flag.FlagSet) *suiteFlags {
	return &suiteFlags{
		workers:    fs.Int("workers", 1, "parallel evaluation workers (0 = all CPU cores)"),
		cacheDir:   fs.String("cache-dir", "", "disk-backed design-point cache directory; persists across runs, so an interrupted sweep resumes (empty = memory only)"),
		cacheMB:    fs.Int("cache-mb", 0, "persistent cache size cap in MB (0 = 256)"),
		jobTimeout: fs.Duration("job-timeout", 0, "per-job deadline; timed-out jobs are retried under -job-retries (0 = none)"),
		jobRetries: fs.Int("job-retries", 0, "extra attempts for transiently-failing jobs (retries are reported on stderr)"),
		engine:     fs.String("engine", "event", "simulator scheduling core: event (discrete-event, default) or cycle (legacy reference loop); results are byte-identical"),
	}
}

// parseEngine maps the -engine flag to the simulator's core selector.
func parseEngine(s string) (sim.EngineKind, error) {
	switch s {
	case "", "event":
		return sim.EngineEvent, nil
	case "cycle":
		return sim.EngineCycle, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want event or cycle)", s)
	}
}

// session builds the core.Session the flags describe. Retry accounting goes
// to stderr, keeping stdout byte-identical across runs and worker counts.
func (f *suiteFlags) session(extra ...core.SessionOption) (*core.Session, error) {
	eng, err := parseEngine(*f.engine)
	if err != nil {
		return nil, err
	}
	opts := []core.SessionOption{core.WithWorkers(*f.workers),
		core.WithSimOptions(sim.Options{Engine: eng})}
	if *f.cacheDir != "" {
		d, err := exec.OpenDiskCache(*f.cacheDir, int64(*f.cacheMB)<<20)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.WithDiskCache(d))
	}
	if *f.jobTimeout > 0 || *f.jobRetries > 0 {
		opts = append(opts, core.WithJobPolicy(exec.JobPolicy{
			Timeout: *f.jobTimeout,
			Retries: *f.jobRetries,
			Backoff: 100 * time.Millisecond,
			OnRetry: func(attempt int, err error) {
				fmt.Fprintf(os.Stderr, "plasticine: retry %d after transient error: %v\n", attempt, err)
			},
		}))
	}
	return core.NewSession(append(opts, extra...)...), nil
}

func cmdInfo() error {
	p := arch.Default()
	fmt.Println(p.String())
	fmt.Printf("peak %.1f single-precision TFLOPS, %.1f GB/s DRAM, max power %.1f W\n",
		p.PeakFLOPS()/1e12, p.PeakDRAMBandwidth()/1e9, arch.MaxPower(p))
	a := arch.Area(p)
	fmt.Printf("area %.1f mm^2 at 28 nm (PCU %.3f, PMU %.3f per unit)\n",
		a.ChipTotal(), a.PCUTotal(), a.PMUTotal())
	return nil
}

func cmdList() error {
	t := stats.New("Table 4 benchmarks", "Name", "Scale")
	for _, b := range workloads.All() {
		t.Add(b.Name(), b.ScaleNote())
	}
	fmt.Print(t.String())
	return nil
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	faultSpec := fs.String("faults", "", "fault plan, e.g. seed=1,pcu=4,pmu=2,sw=1,chan=1,retry=0.001")
	events := fs.String("events", "", "timed mid-run faults, e.g. kill-pcu@5000,kill-chan@12000")
	budget := fs.Int64("budget", 0, "abort via the watchdog after this many cycles (0 = unlimited)")
	engine := fs.String("engine", "event", "simulator scheduling core: event (default) or cycle")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: plasticine run <benchmark> [-faults spec] [-events list] [-budget cycles] [-engine event|cycle]")
	}
	b, err := workloads.ByName(fs.Arg(0))
	if err != nil {
		return err
	}
	eng, err := parseEngine(*engine)
	if err != nil {
		return err
	}
	plan, err := buildPlan(*faultSpec, *events, arch.Default())
	if err != nil {
		return err
	}
	if plan != nil {
		fmt.Printf("fault plan: %s\n", plan)
	}
	sess := core.NewSession(core.WithFaults(plan),
		core.WithSimOptions(sim.Options{MaxCycles: *budget, Engine: eng}))
	r, err := sess.RunBenchmark(ctx, b)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s)\n", r.Name, b.ScaleNote())
	fmt.Printf("  plasticine: %d cycles = %.1f us at 1 GHz, %.1f W\n", r.Cycles, r.TimeSec*1e6, r.PowerW)
	fmt.Printf("  utilization: PCU %.1f%%  PMU %.1f%%  AG %.1f%%  FU %.1f%%\n",
		100*r.Util.PCUFrac, 100*r.Util.PMUFrac, 100*r.Util.AGFrac, 100*r.Util.FUFrac)
	fmt.Printf("  DRAM: %.2f MB read, %.2f MB written\n", r.DRAMReadMB, r.DRAMWriteMB)
	fmt.Printf("  fpga baseline: %.1f us, %.1f W\n", r.FPGATimeSec*1e6, r.FPGAPowerW)
	fmt.Printf("  speedup %.2fx (paper %.1fx), perf/W %.2fx (paper %.1fx)\n",
		r.Speedup, r.PaperSpeedup, r.PerfPerWatt, r.PaperPerfW)
	if r.Retries > 0 || r.RetriesExhausted > 0 || r.LatencySpikes > 0 {
		fmt.Printf("  faults: %d burst retries (%d exhausted), %d latency spikes\n",
			r.Retries, r.RetriesExhausted, r.LatencySpikes)
	}
	if r.Recovery != nil {
		fmt.Printf("  recovery: %d event(s) survived, %d drain + %d reconfig stall cycles, %d bursts reissued\n",
			len(r.Recovery.Events), r.Recovery.DrainCycles, r.Recovery.ReconfigCycles, r.Recovery.LostBursts)
		for _, e := range r.Recovery.Events {
			fmt.Printf("    %s at cycle %d: drain %d, checkpoint %d B, moved %d PCU / %d PMU, %d rerouted, reconfig %d\n",
				e.Event, e.At, e.DrainCycles, e.CheckpointBytes, e.MovedPCUs, e.MovedPMUs, e.ReroutedEdges, e.ReconfigCycles)
		}
	}
	return nil
}

// buildPlan parses -faults and -events flags into a fault plan; both empty
// yields a nil (pristine) plan. -events may only carry timed kill terms.
func buildPlan(faultSpec, events string, params arch.Params) (*fault.Plan, error) {
	if faultSpec == "" && events == "" {
		return nil, nil
	}
	spec, err := fault.ParseSpec(faultSpec)
	if err != nil {
		return nil, err
	}
	evSpec, err := fault.ParseSpec(events)
	if err != nil {
		return nil, err
	}
	if evSpec.PCUs != 0 || evSpec.PMUs != 0 || evSpec.Switches != 0 || evSpec.Chans != 0 ||
		evSpec.SpikeProb != 0 || evSpec.TransientProb != 0 {
		return nil, fmt.Errorf("-events takes only kill-<kind>@<cycle> terms; put static faults in -faults")
	}
	spec.Events = append(spec.Events, evSpec.Events...)
	return fault.NewPlan(spec, params)
}

func cmdProfile(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark to profile (see plasticine list)")
	faultSpec := fs.String("faults", "", "fault plan, e.g. seed=1,pcu=4,retry=0.001")
	events := fs.String("events", "", "timed mid-run faults, e.g. kill-pcu@5000,kill-chan@12000")
	tracePath := fs.String("trace", "", "Chrome trace-event JSON output path (default <bench>_trace.json; \"\" after -bench keeps the default, \"none\" disables)")
	countersPath := fs.String("counters", "", "flat counters JSON output path (default <bench>_counters.json; \"none\" disables)")
	byPattern := fs.Bool("by-pattern", false, "roll the profile up by source pattern node (rows sum exactly to the makespan)")
	showPasses := fs.Bool("passes", false, "print the compiler pass trace (wall time and per-pass statistics)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	name := *bench
	if name == "" && fs.NArg() == 1 {
		name = fs.Arg(0) // positional form: plasticine profile <benchmark>
	}
	if name == "" || (fs.NArg() > 0 && *bench != "") || fs.NArg() > 1 {
		return fmt.Errorf("usage: plasticine profile -bench <name> [-by-pattern] [-passes] [-events list] [-faults spec] [-trace path] [-counters path]")
	}
	b, err := workloads.ByName(name)
	if err != nil {
		return err
	}
	plan, err := buildPlan(*faultSpec, *events, arch.Default())
	if err != nil {
		return err
	}
	if plan != nil {
		fmt.Printf("fault plan: %s\n", plan)
	}
	sess := core.NewSession(core.WithFaults(plan))
	p, err := sess.Profile(ctx, b)
	if err != nil {
		return err
	}
	if *byPattern {
		fmt.Print(core.FormatPatternProfile(p.Pattern))
	} else {
		fmt.Print(core.FormatProfile(p.Report))
	}
	if *showPasses && p.Passes != nil {
		fmt.Print(p.Passes.String())
	}
	write := func(path, fallback string, gen func() ([]byte, error), what string) error {
		if path == "none" {
			return nil
		}
		if path == "" {
			path = fallback
		}
		data, err := gen()
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s to %s (%d bytes)\n", what, path, len(data))
		return nil
	}
	if err := write(*tracePath, name+"_trace.json", p.ChromeTrace, "chrome trace"); err != nil {
		return err
	}
	return write(*countersPath, name+"_counters.json", p.CountersJSON, "counters")
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark to explain (see plasticine list)")
	cols := fs.Int("cols", 0, "override fabric columns (0 = paper default); shrink to probe fit limits")
	rows := fs.Int("rows", 0, "override fabric rows (0 = paper default)")
	faultSpec := fs.String("faults", "", "fault plan, e.g. seed=1,pcu=40,pmu=20")
	asJSON := fs.Bool("json", false, "emit the structured report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	name := *bench
	if name == "" && fs.NArg() == 1 {
		name = fs.Arg(0) // positional form: plasticine explain <benchmark>
	}
	if name == "" || (fs.NArg() > 0 && *bench != "") || fs.NArg() > 1 {
		return fmt.Errorf("usage: plasticine explain -bench <name> [-cols N] [-rows N] [-faults spec] [-json]")
	}
	b, err := workloads.ByName(name)
	if err != nil {
		return err
	}
	params := arch.Default()
	if *cols > 0 {
		params.Chip.Cols = *cols
	}
	if *rows > 0 {
		params.Chip.Rows = *rows
	}
	plan, err := buildPlan(*faultSpec, "", params)
	if err != nil {
		return err
	}
	sess := core.NewSession(core.WithArch(params), core.WithFaults(plan))
	ex, err := sess.Explain(b)
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := json.MarshalIndent(ex, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Print(ex.String())
	// A program that does not fit is the expected answer, not a failure:
	// exit 0 either way so scripts can parse the report.
	return nil
}

func cmdBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "also write BENCH_sim.json (schema in EXPERIMENTS.md)")
	outPath := fs.String("out", "", "output path for the JSON document (default BENCH_sim.json; implies -json)")
	suite := addSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	t0 := time.Now()
	sess, err := suite.session()
	if err != nil {
		return err
	}
	defer shutdownSession("bench", sess, t0)
	results, err := sess.Bench(ctx, fs.Args())
	if err != nil {
		return err
	}
	fmt.Print(core.FormatBench(results))
	if *asJSON || *outPath != "" {
		path := *outPath
		if path == "" {
			path = "BENCH_sim.json"
		}
		data, err := core.BenchJSON(results)
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
	return nil
}

func cmdResilience(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("resilience", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "fault-plan seed (same seed, same disabled tiles)")
	spike := fs.Float64("spike", 0, "per-burst DRAM latency-spike probability in [0,1]")
	retry := fs.Float64("retry", 0, "per-burst transient-failure probability in [0,1]")
	suite := addSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: plasticine resilience <benchmark> [-seed N] [-spike P] [-retry P] [-workers N]")
	}
	if *spike < 0 || *spike > 1 {
		return fmt.Errorf("usage: plasticine resilience: -spike %v is not a probability in [0,1]", *spike)
	}
	if *retry < 0 || *retry > 1 {
		return fmt.Errorf("usage: plasticine resilience: -retry %v is not a probability in [0,1]", *retry)
	}
	b, err := workloads.ByName(fs.Arg(0))
	if err != nil {
		return err
	}
	t0 := time.Now()
	sess, err := suite.session()
	if err != nil {
		return err
	}
	defer shutdownSession("resilience", sess, t0)
	base := fault.Spec{Seed: *seed, SpikeProb: *spike, TransientProb: *retry}
	rows, err := sess.Resilience(ctx, b, base, core.DefaultResilienceFractions())
	if err != nil {
		return err
	}
	fmt.Print(core.FormatResilience(b.Name(), *seed, rows))
	return nil
}

func cmdRecovery(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("recovery", flag.ContinueOnError)
	events := fs.String("events", "", "timed faults to survive (default kill-pcu@1000,kill-pmu@2500,kill-chan@4000)")
	seed := fs.Int64("seed", 1, "victim-draw seed (same seed, same victims)")
	suite := addSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: plasticine recovery <benchmark> [-events list] [-seed N]")
	}
	b, err := workloads.ByName(fs.Arg(0))
	if err != nil {
		return err
	}
	spec := fault.Spec{Seed: *seed, Events: core.DefaultRecoveryEvents()}
	if *events != "" {
		parsed, err := fault.ParseSpec(*events)
		if err != nil {
			return err
		}
		if len(parsed.Events) == 0 {
			return fmt.Errorf("usage: plasticine recovery: -events wants kill-<kind>@<cycle> terms, got %q", *events)
		}
		spec.Events = parsed.Events
	}
	t0 := time.Now()
	sess, err := suite.session()
	if err != nil {
		return err
	}
	defer shutdownSession("recovery", sess, t0)
	rep, err := sess.Recovery(ctx, b, spec)
	if err != nil {
		return err
	}
	fmt.Print(core.FormatRecovery(rep))
	return nil
}

func cmdBitstream(args []string) error {
	fs := flag.NewFlagSet("bitstream", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit JSON instead of the assembly listing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: plasticine bitstream <benchmark> [-json]")
	}
	b, err := workloads.ByName(fs.Arg(0))
	if err != nil {
		return err
	}
	p, err := b.Build()
	if err != nil {
		return err
	}
	m, err := core.New().Compile(p)
	if err != nil {
		return err
	}
	bs := compiler.GenerateBitstream(m)
	if *asJSON {
		return bs.Encode(os.Stdout)
	}
	fmt.Print(bs.Assembly())
	return nil
}

func cmdRatios(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ratios", flag.ContinueOnError)
	suite := addSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	t0 := time.Now()
	sess, err := suite.session()
	if err != nil {
		return err
	}
	defer shutdownSession("ratios", sess, t0)
	rows, err := sess.RatioStudy(ctx)
	if err != nil {
		return err
	}
	fmt.Print(dse.FormatRatios(rows))
	return nil
}

func cmdTable3(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table3", flag.ContinueOnError)
	suite := addSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	t0 := time.Now()
	sess, err := suite.session()
	if err != nil {
		return err
	}
	defer shutdownSession("table3", sess, t0)
	rows, err := sess.Table3(ctx)
	if err != nil {
		return err
	}
	fmt.Print(dse.FormatTable3(rows))
	return nil
}

func cmdTable6(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table6", flag.ContinueOnError)
	suite := addSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	t0 := time.Now()
	sess, err := suite.session()
	if err != nil {
		return err
	}
	defer shutdownSession("table6", sess, t0)
	rows, err := sess.Table6(ctx)
	if err != nil {
		return err
	}
	fmt.Print(dse.FormatTable6(rows))
	return nil
}

func cmdTable7(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table7", flag.ContinueOnError)
	format := fs.String("format", "table", "output format: table, csv, json")
	suite := addSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	t0 := time.Now()
	sess, err := suite.session()
	if err != nil {
		return err
	}
	defer shutdownSession("table7", sess, t0)
	rows, err := sess.Table7(ctx)
	if err != nil {
		return err
	}
	switch *format {
	case "table":
		fmt.Print(core.FormatTable7(rows))
	case "csv":
		fmt.Print(core.Table7CSV(rows))
	case "json":
		b, err := core.Table7JSON(rows)
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}

func cmdFig7(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fig7", flag.ContinueOnError)
	panel := fs.String("panel", "a", "panel to compute: a-f or all")
	suite := addSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	t0 := time.Now()
	sess, err := suite.session()
	if err != nil {
		return err
	}
	defer shutdownSession("fig7", sess, t0)
	panels := []string{*panel}
	if *panel == "all" {
		panels = []string{"a", "b", "c", "d", "e", "f"}
	}
	for _, id := range panels {
		p, err := sess.Figure7(ctx, id)
		if err != nil {
			return err
		}
		fmt.Printf("panel %s:\n%s\n", id, p.Format())
	}
	return nil
}
