package main

// The tune subcommand: ROADMAP item 4 — "give me the best chip for this
// workload mix under 100 mm²" as one invocation. Front table (or -json
// document) on stdout, byte-identical at any -workers count; progress,
// prune accounting and the cache summary on stderr. With -cache-dir the
// search is killable: evaluations persist in the design-point cache and the
// search state in a PLTN snapshot, so a rerun resumes byte-identically, and
// -shard i/N splits one search across cooperating processes sharing the
// directory.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"plasticine/internal/tune"
)

func cmdTune(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tune", flag.ContinueOnError)
	mix := fs.String("mix", "InnerProduct:1,TPCHQ6:1", "workload mix as benchmark:weight pairs, comma-separated")
	budget := fs.Int("budget", 48, "simulated-candidate budget; the search stops at the first generation boundary at or past it")
	pop := fs.Int("pop", 24, "candidates sampled per generation")
	seed := fs.Int64("seed", 1, "search seed (same seed, same front at any -workers)")
	maxArea := fs.Float64("max-area", 0, "chip area ceiling in mm^2, enforced analytically before simulation (0 = unconstrained)")
	maxPower := fs.Float64("max-power", 0, "chip power ceiling in W, enforced analytically before simulation (0 = unconstrained)")
	maxGen := fs.Int("max-generations", 0, "generation cap when pruning starves the budget (0 = derived from -budget)")
	shard := fs.String("shard", "", "run shard i of N of one search over a shared -cache-dir, e.g. 0/4")
	shardWait := fs.Duration("shard-wait", 15*time.Second, "patience for another shard's result before computing it locally")
	asJSON := fs.Bool("json", false, "emit the plasticine-tune/v1 JSON document (schema in EXPERIMENTS.md) instead of the table")
	suite := addSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: plasticine tune [flags]; the workload mix goes in -mix")
	}
	entries, err := tune.ParseMix(*mix)
	if err != nil {
		return err
	}
	spec := tune.Spec{
		Mix:            entries,
		Constraints:    tune.Constraints{MaxAreaMM2: *maxArea, MaxPowerW: *maxPower},
		Budget:         *budget,
		Population:     *pop,
		MaxGenerations: *maxGen,
		Seed:           *seed,
		ShardWait:      *shardWait,
	}
	if *shard != "" {
		if n, err := fmt.Sscanf(*shard, "%d/%d", &spec.Shard, &spec.Shards); n != 2 || err != nil {
			return fmt.Errorf("bad -shard %q: want i/N like 0/4", *shard)
		}
		if spec.Shards < 1 || spec.Shard < 0 || spec.Shard >= spec.Shards {
			return fmt.Errorf("bad -shard %q: shard index must lie in [0,N)", *shard)
		}
		if spec.Shards > 1 && *suite.cacheDir == "" {
			return fmt.Errorf("-shard needs a shared -cache-dir to exchange results through")
		}
	}
	t0 := time.Now()
	sess, err := suite.session()
	if err != nil {
		return err
	}
	defer shutdownSession("tune", sess, t0)
	res, err := sess.Tune(ctx, spec, func(g tune.Generation) {
		fmt.Fprintf(os.Stderr, "tune: generation %d: %d sampled, %d pruned, %d/%d evaluated, front %d\n",
			g.Gen, g.Sampled, g.Pruned, g.Evaluated, g.Budget, g.FrontSize)
	})
	if err != nil {
		return err
	}
	st := res.Stats
	if st.ResumedEvaluations > 0 || st.ResumedGenerations > 0 {
		fmt.Fprintf(os.Stderr, "tune: resumed from snapshot: %d generation(s), %d evaluation(s) already complete\n",
			st.ResumedGenerations, st.ResumedEvaluations)
	}
	pct := 0.0
	if st.Sampled > 0 {
		pct = 100 * float64(st.PrunedAnalytic) / float64(st.Sampled)
	}
	fmt.Fprintf(os.Stderr,
		"tune: sampled %d candidates, pruned %d analytically (%.0f%%) before simulation, evaluated %d (%d infeasible) in %d generation(s)\n",
		st.Sampled, st.PrunedAnalytic, pct, st.Evaluated, st.InfeasibleSim, st.Generations)
	if *asJSON {
		data, err := tune.ResultJSON(spec, res)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Print(tune.FormatFront(res))
	return nil
}
