package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"plasticine/internal/serve"
)

// cmdServe runs the multi-tenant evaluation service: an HTTP/JSON API over
// one shared session, with per-tenant quotas, weighted-fair dispatch,
// load shedding and graceful drain on SIGTERM/SIGINT (finish in-flight
// requests within -drain, flush the cache tier, exit 0).
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:9414", "listen address")
	queueDepth := fs.Int("queue", 64, "admission queue bound; requests beyond it are shed with 429")
	watermark := fs.Int("shed-watermark", 0, "queue depth at which heavy requests (sweeps) are shed (0 = 3/4 of -queue)")
	concurrency := fs.Int("concurrency", 0, "dispatcher slots executing queued requests (0 = -workers)")
	rate := fs.Float64("tenant-rate", 10, "per-tenant sustained requests/second (token-bucket refill)")
	burst := fs.Float64("tenant-burst", 20, "per-tenant burst capacity (token-bucket size)")
	deadline := fs.Duration("default-deadline", 60*time.Second, "deadline applied when the client sends no timeout")
	maxDeadline := fs.Duration("max-deadline", 10*time.Minute, "clamp on client-supplied timeouts")
	drain := fs.Duration("drain", 15*time.Second, "how long a shutdown waits for in-flight requests before canceling them")
	heartbeat := fs.Duration("heartbeat", time.Second, "NDJSON heartbeat interval for streaming sweeps")
	faultInjection := fs.Bool("fault-injection", false, "enable /debugz/panic (soak testing only)")
	debug := fs.Bool("debug", false, "expose net/http/pprof under /debugz/pprof/")
	slowReq := fs.Duration("slow-request", 10*time.Second, "log traced requests slower than this (negative disables)")
	accessLog := fs.String("access-log", "", "append one JSON line per traced request to this file ('-' = stderr)")
	traceRing := fs.Int("trace-ring", 128, "recent traced requests kept for /debugz/requests")
	suite := addSuiteFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var accessW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("access log: %w", err)
		}
		defer f.Close()
		accessW = f
	}
	t0 := time.Now()
	sess, err := suite.session()
	if err != nil {
		return err
	}
	// The server's drain closes the session; the shared shutdown path is
	// idempotent, so the summary still prints once on every exit route.
	defer shutdownSession("serve", sess, t0)
	srv, err := serve.New(serve.Config{
		Session:         sess,
		QueueDepth:      *queueDepth,
		ShedWatermark:   *watermark,
		Concurrency:     *concurrency,
		TenantRate:      *rate,
		TenantBurst:     *burst,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		DrainBudget:     *drain,
		Heartbeat:       *heartbeat,
		FaultInjection:  *faultInjection,
		Debug:           *debug,
		SlowRequest:     *slowReq,
		AccessLog:       accessW,
		TraceRing:       *traceRing,
	})
	if err != nil {
		return err
	}
	return srv.ListenAndServe(ctx, *addr)
}
