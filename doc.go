// Package plasticine reproduces "Plasticine: A Reconfigurable Architecture
// For Parallel Patterns" (Prabhakar et al., ISCA 2017) as a pure-Go stack:
// the parallel-pattern programming model, a DHDL-like hierarchical dataflow
// IR, a compiler (virtual-unit allocation, SIMD stage scheduling,
// partitioning, placement and routing), a cycle-level simulator with a DDR3
// memory model, area/power models seeded from the paper's synthesis
// results, an analytical Stratix V FPGA baseline, the thirteen Table 4
// benchmarks, and the design-space-exploration harnesses behind Tables 3,
// 5, 6 and 7 and Figure 7.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The bench targets in
// bench_test.go regenerate every measured artefact:
//
//	go test -bench=Table7 -benchtime=1x .
//	go run ./cmd/plasticine table7
package plasticine
