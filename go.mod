module plasticine

go 1.22
