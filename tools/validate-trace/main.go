// Command validate-trace checks that an emitted Chrome trace file is
// parseable JSON with monotonic timestamps (the invariants chrome://tracing
// and Perfetto rely on). It is the CI profile-smoke gate.
//
//	go run ./tools/validate-trace <bench>_trace.json...
package main

import (
	"fmt"
	"os"

	"plasticine/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: validate-trace <trace.json>...")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err == nil {
			err = trace.ValidateChrome(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "validate-trace: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}
