// Command bench-diff compares two BENCH_sim.json documents (schema
// plasticine-bench-sim/v1) and fails when any benchmark's simulated cycle
// count regressed beyond a threshold. It is the CI perf-regression gate:
// cycle counts are deterministic, so any drift is a real behaviour change,
// while wall-clock throughput (host-dependent) is reported but never gated.
//
//	go run ./tools/bench-diff [-threshold 0.0] base.json new.json
//
// Exit status: 0 when every benchmark is within threshold, 1 on regression
// or schema mismatch, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"plasticine/internal/core"
)

func main() {
	fs := flag.NewFlagSet("bench-diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.0,
		"allowed fractional cycle-count regression per benchmark (0.02 = 2%)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bench-diff [-threshold frac] <base.json> <new.json>")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	if *threshold < 0 {
		fmt.Fprintln(os.Stderr, "bench-diff: -threshold must be >= 0")
		os.Exit(2)
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-diff:", err)
		os.Exit(1)
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-diff:", err)
		os.Exit(1)
	}

	baseBy := map[string]core.BenchSim{}
	for _, r := range base.Results {
		baseBy[r.Benchmark] = r
	}
	regressions := 0
	fmt.Printf("%-14s %12s %12s %9s\n", "benchmark", "base cycles", "new cycles", "delta")
	for _, r := range cur.Results {
		b, ok := baseBy[r.Benchmark]
		if !ok {
			fmt.Printf("%-14s %12s %12d %9s  (new benchmark)\n", r.Benchmark, "-", r.Cycles, "-")
			continue
		}
		delete(baseBy, r.Benchmark)
		delta := float64(r.Cycles-b.Cycles) / float64(b.Cycles)
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-14s %12d %12d %+8.2f%%%s\n", r.Benchmark, b.Cycles, r.Cycles, 100*delta, mark)
	}
	for name := range baseBy {
		fmt.Printf("%-14s dropped from the new results  REGRESSION\n", name)
		regressions++
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "bench-diff: %d benchmark(s) regressed beyond %.2f%%\n",
			regressions, 100**threshold)
		os.Exit(1)
	}
	fmt.Println("bench-diff: ok")
}

func load(path string) (*core.BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f core.BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != core.BenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, core.BenchSchema)
	}
	if len(f.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &f, nil
}
