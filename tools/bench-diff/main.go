// Command bench-diff compares two BENCH_sim.json documents (schema
// plasticine-bench-sim/v1) and fails when any benchmark's simulated cycle
// count regressed beyond a threshold. It is the CI perf-regression gate:
// cycle counts are deterministic, so any drift is a real behaviour change.
// Wall-clock throughput (cycles_per_second, host-dependent) is reported as
// a delta column and, with -min-cps, gated against an absolute floor — a
// coarse bound that catches order-of-magnitude scheduling-core regressions
// without flaking on host noise.
//
//	go run ./tools/bench-diff [-threshold 0.0] [-min-cps 0] base.json new.json
//
// Exit status: 0 when every benchmark is within threshold (and above the
// throughput floor, when set), 1 on regression or schema mismatch, 2 on
// usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"plasticine/internal/core"
)

func main() {
	fs := flag.NewFlagSet("bench-diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.0,
		"allowed fractional cycle-count regression per benchmark (0.02 = 2%)")
	minCPS := fs.Float64("min-cps", 0,
		"minimum simulated cycles per host second each new-document benchmark must sustain (0 = no throughput gate)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bench-diff [-threshold frac] [-min-cps cps] <base.json> <new.json>")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	if *threshold < 0 {
		fmt.Fprintln(os.Stderr, "bench-diff: -threshold must be >= 0")
		os.Exit(2)
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-diff:", err)
		os.Exit(1)
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-diff:", err)
		os.Exit(1)
	}

	baseBy := map[string]core.BenchSim{}
	for _, r := range base.Results {
		baseBy[r.Benchmark] = r
	}
	regressions := 0
	fmt.Printf("%-14s %12s %12s %9s %11s %9s\n",
		"benchmark", "base cycles", "new cycles", "delta", "Mcyc/s", "cps delta")
	for _, r := range cur.Results {
		cps := fmt.Sprintf("%11.2f", r.CyclesPerSec/1e6)
		slow := ""
		if *minCPS > 0 && r.CyclesPerSec < *minCPS {
			slow = "  TOO SLOW"
			regressions++
		}
		b, ok := baseBy[r.Benchmark]
		if !ok {
			fmt.Printf("%-14s %12s %12d %9s %s %9s  (new benchmark)%s\n",
				r.Benchmark, "-", r.Cycles, "-", cps, "-", slow)
			continue
		}
		delete(baseBy, r.Benchmark)
		delta := float64(r.Cycles-b.Cycles) / float64(b.Cycles)
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSION"
			regressions++
		}
		cpsDelta := "        -"
		if b.CyclesPerSec > 0 {
			cpsDelta = fmt.Sprintf("%+8.1f%%", 100*(r.CyclesPerSec-b.CyclesPerSec)/b.CyclesPerSec)
		}
		fmt.Printf("%-14s %12d %12d %+8.2f%% %s %s%s%s\n",
			r.Benchmark, b.Cycles, r.Cycles, 100*delta, cps, cpsDelta, mark, slow)
	}
	for name := range baseBy {
		fmt.Printf("%-14s dropped from the new results  REGRESSION\n", name)
		regressions++
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "bench-diff: %d benchmark(s) regressed (cycle threshold %.2f%%, throughput floor %.0f cyc/s)\n",
			regressions, 100**threshold, *minCPS)
		os.Exit(1)
	}
	fmt.Println("bench-diff: ok")
}

func load(path string) (*core.BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f core.BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != core.BenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, core.BenchSchema)
	}
	if len(f.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &f, nil
}
