// Command cache-inspect audits a persistent design-point cache directory
// (the -cache-dir of the plasticine suite subcommands): it decodes every
// entry, prints a summary, and lists defective entries — the ones a sweep
// would quarantine and recompute. Exit status 1 when any entry is
// defective, so a CI step can assert a tier is clean.
//
//	go run ./tools/cache-inspect [-v] <cache-dir>
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"plasticine/internal/exec"
)

func main() {
	verbose := flag.Bool("v", false, "list every entry, not just defective ones")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cache-inspect [-v] <cache-dir>")
		os.Exit(2)
	}
	entries, err := exec.InspectDiskCache(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cache-inspect:", err)
		os.Exit(2)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].File < entries[j].File })
	var bytes, defects int
	for _, e := range entries {
		if e.Err != nil {
			defects++
			fmt.Printf("DEFECT %s: %v\n", e.File, e.Err)
			continue
		}
		bytes += e.Bytes
		if *verbose {
			fmt.Printf("ok %s %6d B  %q\n", e.File, e.Bytes, e.Key)
		}
	}
	fmt.Printf("%d entries, %d payload bytes, %d defective\n", len(entries), bytes, defects)
	if defects > 0 {
		os.Exit(1)
	}
}
