// metrics-lint validates a Prometheus text-format (v0.0.4) exposition read
// from a file or stdin. It is the CI gate behind /metricsz: a malformed
// line, a duplicate series, or an internally inconsistent histogram fails
// the build before a real scraper ever sees it.
//
// Checks:
//   - every sample line parses: name{labels} value, with a float value
//   - metric and label names match Prometheus grammar
//   - HELP/TYPE lines are well-formed and TYPE precedes the samples it types
//   - no series (name + sorted label set) appears twice
//   - histograms are consistent: _bucket counts are cumulative and
//     non-decreasing in le order, the +Inf bucket exists and equals _count
//   - with -require a,b,c: each named family must be present
//
// Exit status 1 on any defect, with one line per problem on stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type sample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

type linter struct {
	problems []string
	types    map[string]string // family -> counter|gauge|histogram|...
	seen     map[string]int    // series key -> first line
	samples  []sample
	families map[string]bool
}

func (l *linter) errf(line int, format string, args ...any) {
	l.problems = append(l.problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

// baseFamily strips histogram/summary suffixes so _bucket/_sum/_count
// samples attach to the TYPE line of their family.
func baseFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

// parseSample parses `name{l1="v1",...} value` or `name value`. Label
// values may contain escaped quotes, backslashes and newlines.
func parseSample(s string) (sample, error) {
	sm := sample{labels: map[string]string{}}
	i := strings.IndexAny(s, "{ ")
	if i < 0 {
		return sm, fmt.Errorf("no value separator")
	}
	sm.name = s[:i]
	if !metricNameRe.MatchString(sm.name) {
		return sm, fmt.Errorf("bad metric name %q", sm.name)
	}
	rest := s[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ,")
			if rest == "" {
				return sm, fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return sm, fmt.Errorf("label without '='")
			}
			lname := rest[:eq]
			if !labelNameRe.MatchString(lname) {
				return sm, fmt.Errorf("bad label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return sm, fmt.Errorf("unquoted value for label %q", lname)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return sm, fmt.Errorf("unterminated value for label %q", lname)
				}
				c := rest[0]
				rest = rest[1:]
				if c == '"' {
					break
				}
				if c == '\\' {
					if rest == "" {
						return sm, fmt.Errorf("dangling escape in label %q", lname)
					}
					e := rest[0]
					rest = rest[1:]
					switch e {
					case '\\', '"':
						val.WriteByte(e)
					case 'n':
						val.WriteByte('\n')
					default:
						return sm, fmt.Errorf("bad escape \\%c in label %q", e, lname)
					}
					continue
				}
				val.WriteByte(c)
			}
			if _, dup := sm.labels[lname]; dup {
				return sm, fmt.Errorf("label %q repeated", lname)
			}
			sm.labels[lname] = val.String()
		}
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return sm, fmt.Errorf("want 'value [timestamp]', got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return sm, fmt.Errorf("bad value %q", fields[0])
	}
	sm.value = v
	return sm, nil
}

func seriesKey(sm sample) string {
	keys := make([]string, 0, len(sm.labels))
	for k := range sm.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(sm.name)
	for _, k := range keys {
		fmt.Fprintf(&b, "\xff%s\xfe%s", k, sm.labels[k])
	}
	return b.String()
}

func (l *linter) lint(lines []string) {
	for n, raw := range lines {
		line := n + 1
		if strings.TrimSpace(raw) == "" {
			continue
		}
		if strings.HasPrefix(raw, "#") {
			fields := strings.SplitN(raw, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Prometheus ignores other comments; so do we.
				continue
			}
			name := fields[2]
			if !metricNameRe.MatchString(name) {
				l.errf(line, "%s for bad metric name %q", fields[1], name)
				continue
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					l.errf(line, "TYPE without a type")
					continue
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					l.errf(line, "unknown TYPE %q", fields[3])
					continue
				}
				if _, dup := l.types[name]; dup {
					l.errf(line, "duplicate TYPE for %s", name)
				}
				l.types[name] = fields[3]
				l.families[name] = true
			}
			continue
		}
		sm, err := parseSample(raw)
		if err != nil {
			l.errf(line, "malformed sample: %v (%q)", err, raw)
			continue
		}
		sm.line = line
		fam := baseFamily(sm.name, l.types)
		if _, ok := l.types[fam]; !ok {
			l.errf(line, "sample %s has no preceding TYPE line", sm.name)
		}
		l.families[fam] = true
		key := seriesKey(sm)
		if first, dup := l.seen[key]; dup {
			l.errf(line, "duplicate series %s (first at line %d)", sm.name, first)
		} else {
			l.seen[key] = line
		}
		l.samples = append(l.samples, sm)
	}
	l.checkHistograms()
}

// checkHistograms groups _bucket/_count samples per histogram series and
// verifies cumulativity and the +Inf/_count agreement.
func (l *linter) checkHistograms() {
	type hist struct {
		buckets map[float64]float64 // le -> cumulative count
		inf     float64
		hasInf  bool
		count   float64
		hasCnt  bool
		line    int
	}
	hists := map[string]*hist{} // family + non-le labels
	keyOf := func(fam string, labels map[string]string) string {
		cp := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				cp[k] = v
			}
		}
		return seriesKey(sample{name: fam, labels: cp})
	}
	get := func(k string, line int) *hist {
		h := hists[k]
		if h == nil {
			h = &hist{buckets: map[float64]float64{}, line: line}
			hists[k] = h
		}
		return h
	}
	for _, sm := range l.samples {
		fam := baseFamily(sm.name, l.types)
		if l.types[fam] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(sm.name, "_bucket"):
			le, ok := sm.labels["le"]
			if !ok {
				l.errf(sm.line, "%s without an le label", sm.name)
				continue
			}
			h := get(keyOf(fam, sm.labels), sm.line)
			if le == "+Inf" {
				h.inf, h.hasInf = sm.value, true
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				l.errf(sm.line, "unparsable le=%q", le)
				continue
			}
			h.buckets[bound] = sm.value
		case strings.HasSuffix(sm.name, "_count"):
			h := get(keyOf(fam, sm.labels), sm.line)
			h.count, h.hasCnt = sm.value, true
		}
	}
	for _, h := range hists {
		bounds := make([]float64, 0, len(h.buckets))
		for b := range h.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := 0.0
		for _, b := range bounds {
			if h.buckets[b] < prev {
				l.errf(h.line, "histogram bucket le=%g count %g below previous bucket %g (not cumulative)",
					b, h.buckets[b], prev)
			}
			prev = h.buckets[b]
		}
		if !h.hasInf {
			l.errf(h.line, "histogram without a +Inf bucket")
		} else if h.inf < prev {
			l.errf(h.line, "+Inf bucket %g below last finite bucket %g", h.inf, prev)
		}
		if h.hasInf && h.hasCnt && h.inf != h.count {
			l.errf(h.line, "+Inf bucket %g != _count %g", h.inf, h.count)
		}
	}
}

func main() {
	require := flag.String("require", "", "comma-separated family names that must be present")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: metrics-lint [-require a,b,c] [exposition-file]")
		os.Exit(2)
	}

	var lines []string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	l := &linter{types: map[string]string{}, seen: map[string]int{}, families: map[string]bool{}}
	l.lint(lines)
	if *require != "" {
		for _, fam := range strings.Split(*require, ",") {
			fam = strings.TrimSpace(fam)
			if fam != "" && !l.families[fam] {
				l.problems = append(l.problems, fmt.Sprintf("required family %s missing", fam))
			}
		}
	}
	if len(l.problems) > 0 {
		for _, p := range l.problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "metrics-lint: %d problem(s) in %d line(s)\n", len(l.problems), len(lines))
		os.Exit(1)
	}
	fmt.Printf("metrics-lint: ok (%d series, %d families)\n", len(l.seen), len(l.families))
}
