// Command serve-load is the soak client for `plasticine serve`: it drives a
// running server through the failure modes the serving layer promises to
// survive and exits non-zero if any promise breaks.
//
//	serve-load -addr http://localhost:9414 [-burst 64] [-expect-shed] [-panic]
//
// Checks, in order:
//
//  1. Readiness: /readyz answers 200 within -wait.
//  2. Burst: -burst concurrent mixed requests (run/compile/explain/sweep
//     across -tenants tenants). Overload must shed with 429 (or 504 for
//     expired deadlines) — any 5xx or dropped connection fails the soak;
//     with -expect-shed, at least one 429 must actually occur.
//  3. Cache: an identical request set repeated afterwards must raise the
//     server's cache hit counter — tenants share one design-point cache.
//  4. Panic isolation (-panic): /debugz/panic must answer 500 and the very
//     next request 200 — one poisoned request, not a dead process.
//  5. Metrics: /metricsz is scraped before and after the burst; the
//     exposition must stay parseable, request counters must move by at
//     least the burst size, with -expect-shed the shed counter must move,
//     and with -panic the panic counter must reach 1. /debugz/requests
//     must show traced requests with phase spans.
//  6. Leaks: the final /statsz goroutine count must be under -max-goroutines
//     after the storm has passed.
//
// The SIGTERM drain check (signal mid-flight, expect exit 0 and a flushed
// cache tier) is orchestrated by the caller — see the CI workflow — because
// it is about the server process, not the HTTP surface.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

var (
	addr          = flag.String("addr", "http://localhost:9414", "server base URL")
	burst         = flag.Int("burst", 64, "concurrent requests in the overload burst (size it at ~4x server capacity)")
	tenants       = flag.Int("tenants", 4, "distinct tenants issuing the burst")
	expectShed    = flag.Bool("expect-shed", false, "fail unless the burst actually produced at least one 429")
	panicProbe    = flag.Bool("panic", false, "probe /debugz/panic (server must run with -fault-injection)")
	maxGoroutines = flag.Int("max-goroutines", 500, "goroutine ceiling in the final /statsz snapshot")
	wait          = flag.Duration("wait", 30*time.Second, "how long to wait for /readyz")
)

var client = &http.Client{Timeout: 5 * time.Minute}

// get issues one GET and returns (status, body); status 0 means the
// connection itself failed — always a soak failure.
func get(path string) (int, []byte) {
	resp, err := client.Get(*addr + path)
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// stats fetches the fields of /statsz this client cares about.
type stats struct {
	Goroutines int `json:"goroutines"`
	Cache      struct {
		Hits   int64 `json:"Hits"`
		Misses int64 `json:"Misses"`
	} `json:"cache"`
	Tenants map[string]struct {
		Admitted int64 `json:"admitted"`
		Shed     int64 `json:"shed"`
	} `json:"tenants"`
}

func snapshot() (stats, error) {
	var st stats
	code, body := get("/statsz")
	if code != 200 {
		return st, fmt.Errorf("/statsz = %d: %s", code, body)
	}
	return st, json.Unmarshal(body, &st)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "serve-load: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// scrapeMetric fetches /metricsz and sums the values of every sample whose
// line starts with prefix (family name, optionally with a label matcher).
// The bool reports whether any sample matched.
func scrapeMetric(prefix string) (float64, bool) {
	code, body := get("/metricsz")
	if code != 200 {
		fail("/metricsz = %d: %s", code, body)
	}
	total, found := 0.0, false
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			fail("unparsable /metricsz sample %q: %v", line, err)
		}
		total += v
		found = true
	}
	return total, found
}

func main() {
	flag.Parse()

	// 1. Readiness.
	deadline := time.Now().Add(*wait)
	for {
		if code, _ := get("/readyz"); code == 200 {
			break
		}
		if time.Now().After(deadline) {
			fail("server not ready within %s", *wait)
		}
		time.Sleep(200 * time.Millisecond)
	}
	fmt.Println("serve-load: server ready")

	// Baseline scrape before the burst: the counters we assert on below
	// must move relative to this, not to zero, so the soak composes with
	// whatever ran before it.
	reqBefore, _ := scrapeMetric("plasticine_http_requests_total")
	shedBefore, _ := scrapeMetric("plasticine_requests_shed_total")

	// 2. Overload burst: mixed request classes, several tenants. The
	// contract under overload is shed-with-429, never 5xx, never a dropped
	// connection. 504 is legal too: a deadline can expire while queued.
	paths := []string{
		"/v1/run?bench=InnerProduct",
		"/v1/run?bench=BlackScholes",
		"/v1/run?bench=GEMM",
		"/v1/compile?bench=TPCHQ6",
		"/v1/explain?bench=GDA",
		"/v1/sweep?kind=bench&bench=InnerProduct",
	}
	codes := make([]int, *burst)
	var wg sync.WaitGroup
	for i := 0; i < *burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := fmt.Sprintf("%s&tenant=soak%d", paths[i%len(paths)], i%*tenants)
			codes[i], _ = get(p)
		}(i)
	}
	wg.Wait()
	tally := map[int]int{}
	for i, code := range codes {
		tally[code]++
		switch {
		case code == 0:
			fail("request %d (%s): connection dropped under load", i, paths[i%len(paths)])
		case code >= 500:
			fail("request %d (%s) = %d: overload must answer 429, never 5xx", i, paths[i%len(paths)], code)
		}
	}
	fmt.Printf("serve-load: burst of %d: statuses %v\n", *burst, tally)
	if *expectShed && tally[http.StatusTooManyRequests] == 0 {
		fail("burst of %d produced no 429s; shedding never engaged", *burst)
	}

	// 3. Cross-tenant cache coalescing: repeat an identical set from a fresh
	// tenant and require the hit counter to move.
	before, err := snapshot()
	if err != nil {
		fail("statsz before repeat: %v", err)
	}
	for _, p := range []string{"/v1/run?bench=InnerProduct&tenant=repeat", "/v1/run?bench=InnerProduct&tenant=repeat2"} {
		if code, body := get(p); code != 200 {
			fail("repeat request %s = %d: %s", p, code, body)
		}
	}
	after, err := snapshot()
	if err != nil {
		fail("statsz after repeat: %v", err)
	}
	if after.Cache.Hits <= before.Cache.Hits {
		fail("cache hits did not move on repeated requests (%d -> %d)", before.Cache.Hits, after.Cache.Hits)
	}
	fmt.Printf("serve-load: cache hits %d -> %d on repeat\n", before.Cache.Hits, after.Cache.Hits)

	// 4. Panic isolation.
	if *panicProbe {
		code, _ := get("/debugz/panic")
		if code != 500 {
			fail("/debugz/panic = %d, want 500", code)
		}
		if code, body := get("/v1/run?bench=InnerProduct&tenant=afterpanic"); code != 200 {
			fail("request after panic = %d: %s — the process must survive a poisoned request", code, body)
		}
		fmt.Println("serve-load: panic isolated; server survived")
	}

	// 5. Metrics moved with the traffic. Request counting is middleware-side,
	// so even shed requests count; the delta must cover the whole burst.
	reqAfter, ok := scrapeMetric("plasticine_http_requests_total")
	if !ok {
		fail("no plasticine_http_requests_total samples in /metricsz")
	}
	if delta := reqAfter - reqBefore; delta < float64(*burst) {
		fail("http_requests_total moved by %.0f across a burst of %d", delta, *burst)
	}
	if *expectShed {
		shedAfter, _ := scrapeMetric("plasticine_requests_shed_total")
		if shedAfter <= shedBefore {
			fail("requests_shed_total did not move (%.0f -> %.0f) despite 429s", shedBefore, shedAfter)
		}
		fmt.Printf("serve-load: shed counter %.0f -> %.0f\n", shedBefore, shedAfter)
	}
	if *panicProbe {
		if panics, _ := scrapeMetric("plasticine_request_panics_total"); panics < 1 {
			fail("request_panics_total = %.0f after a panic probe, want >= 1", panics)
		}
	}
	// The trace ring saw the burst: at least one record with phase spans.
	code, body := get("/debugz/requests")
	if code != 200 {
		fail("/debugz/requests = %d: %s", code, body)
	}
	var ring struct {
		Requests []struct {
			ID      string `json:"id"`
			PhaseUS int64  `json:"phase_us"`
			Phases  []struct {
				Name string `json:"name"`
			} `json:"phases"`
		} `json:"requests"`
	}
	if err := json.Unmarshal(body, &ring); err != nil {
		fail("/debugz/requests is not JSON: %v", err)
	}
	traced := 0
	for _, r := range ring.Requests {
		if r.ID != "" && len(r.Phases) > 0 {
			traced++
		}
	}
	if traced == 0 {
		fail("trace ring holds no requests with phase spans after the burst")
	}
	fmt.Printf("serve-load: metrics moved (%.0f requests total), %d traced requests in ring\n", reqAfter, traced)

	// 6. Goroutine ceiling after the storm: give pollers a moment to wind
	// down, then check the final snapshot.
	time.Sleep(500 * time.Millisecond)
	final, err := snapshot()
	if err != nil {
		fail("final statsz: %v", err)
	}
	if final.Goroutines > *maxGoroutines {
		fail("%d goroutines after the storm (ceiling %d): likely a leak", final.Goroutines, *maxGoroutines)
	}
	fmt.Printf("serve-load: OK (%d goroutines, %d cache hits, %d tenants seen)\n",
		final.Goroutines, final.Cache.Hits, len(final.Tenants))
}
